(* Heavier cross-module properties: a model-based fuzz of the mutable
   overlay against a reference implementation, reachability soundness
   of the engine, and selector totality across all strategies. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Selector = Rumor_sim.Selector
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Overlay = Rumor_p2p.Overlay
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run

(* ------------------------------------------------------------------ *)
(* Model-based overlay fuzz: replay a random operation sequence on the
   real overlay and on a naive reference (association multiset), then
   compare observable state. *)
(* ------------------------------------------------------------------ *)

module Model = struct
  (* Reference implementation: alive set + edge multiset as a sorted
     pair list. Slow and obviously correct. *)
  type t = { mutable alive : int list; mutable edges : (int * int) list }

  let create () = { alive = []; edges = [] }
  let norm (u, v) = if u <= v then (u, v) else (v, u)
  let is_alive m v = List.mem v m.alive

  let activate m v = m.alive <- v :: m.alive

  let deactivate m v =
    m.alive <- List.filter (fun x -> x <> v) m.alive;
    m.edges <- List.filter (fun (a, b) -> a <> v && b <> v) m.edges

  let add_edge m u v = m.edges <- norm (u, v) :: m.edges

  let remove_edge m u v =
    let target = norm (u, v) in
    let rec drop = function
      | [] -> (false, [])
      | e :: rest ->
          if e = target then (true, rest)
          else begin
            let hit, rest' = drop rest in
            (hit, e :: rest')
          end
    in
    let hit, edges = drop m.edges in
    m.edges <- edges;
    hit

  let degree m v =
    List.fold_left
      (fun acc (a, b) ->
        acc + (if a = v then 1 else 0) + (if b = v then 1 else 0))
      0 m.edges

  let edge_count m = List.length m.edges
  let node_count m = List.length m.alive
end

type op =
  | Activate
  | Deactivate of int
  | Add_edge of int * int
  | Remove_edge of int * int

let op_gen capacity =
  QCheck.Gen.(
    frequency
      [
        (2, return Activate);
        (1, map (fun v -> Deactivate (v mod capacity)) (int_bound (capacity - 1)));
        ( 4,
          map2
            (fun u v -> Add_edge (u mod capacity, v mod capacity))
            (int_bound (capacity - 1))
            (int_bound (capacity - 1)) );
        ( 2,
          map2
            (fun u v -> Remove_edge (u mod capacity, v mod capacity))
            (int_bound (capacity - 1))
            (int_bound (capacity - 1)) );
      ])

let show_op = function
  | Activate -> "activate"
  | Deactivate v -> Printf.sprintf "deactivate %d" v
  | Add_edge (u, v) -> Printf.sprintf "add %d-%d" u v
  | Remove_edge (u, v) -> Printf.sprintf "remove %d-%d" u v

let capacity = 12

let apply_both o m op =
  match op with
  | Activate ->
      if Overlay.node_count o < capacity then begin
        let v = Overlay.activate o in
        Model.activate m v
      end
  | Deactivate v ->
      if Overlay.is_alive o v then begin
        Overlay.deactivate o v;
        Model.deactivate m v
      end
  | Add_edge (u, v) ->
      if Overlay.is_alive o u && Overlay.is_alive o v then begin
        Overlay.add_edge o u v;
        Model.add_edge m u v
      end
  | Remove_edge (u, v) ->
      if Overlay.is_alive o u && Overlay.is_alive o v then begin
        let real = Overlay.remove_edge o u v in
        let modeled = Model.remove_edge m u v in
        if real <> modeled then
          failwith
            (Printf.sprintf "remove_edge disagrees on %d-%d: %b vs %b" u v real
               modeled)
      end

let agrees o m =
  Overlay.node_count o = Model.node_count m
  && Overlay.edge_count o = Model.edge_count m
  && List.for_all
       (fun v ->
         Overlay.is_alive o v = Model.is_alive m v
         && Overlay.degree o v = Model.degree m v)
       (List.init capacity (fun i -> i))

let prop_overlay_matches_model =
  QCheck.Test.make ~count:300 ~name:"overlay agrees with reference model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map show_op ops))
       QCheck.Gen.(list_size (int_range 0 60) (op_gen capacity)))
    (fun ops ->
      let o = Overlay.create ~capacity in
      let m = Model.create () in
      List.iter (apply_both o m) ops;
      agrees o m && Overlay.invariant o)

(* ------------------------------------------------------------------ *)
(* Engine soundness: informed nodes are exactly the BFS-reachable set
   when push runs long enough, and never more than reachable. *)
(* ------------------------------------------------------------------ *)

let random_sparse_graph seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 40 in
  let edges =
    List.init (Rng.int rng (2 * n)) (fun _ -> (Rng.int rng n, Rng.int rng n))
  in
  Graph.of_edges ~n edges

let prop_informed_subset_of_reachable =
  QCheck.Test.make ~count:150 ~name:"informed set is within BFS reach"
    QCheck.small_int
    (fun seed ->
      let g = random_sparse_graph seed in
      let rng = Rng.create (seed + 999) in
      let res =
        Engine.run ~rng
          ~topology:(Topology.of_graph g)
          ~protocol:(Baselines.push ~horizon:5 ())
          ~sources:[ 0 ] ()
      in
      let dist = Traversal.bfs g 0 in
      let sound = ref true in
      Rumor_sim.Bitset.iter_set res.Engine.knows (fun v ->
          if dist.(v) < 0 then sound := false);
      !sound)

let prop_push_pull_covers_component =
  QCheck.Test.make ~count:80 ~name:"push&pull eventually covers the component"
    QCheck.small_int
    (fun seed ->
      let g = random_sparse_graph seed in
      let n = Graph.n g in
      let rng = Rng.create (seed + 7777) in
      let res =
        Engine.run ~rng
          ~topology:(Topology.of_graph g)
          ~protocol:(Baselines.push_pull ~horizon:(30 * (n + 1)) ())
          ~sources:[ 0 ] ()
      in
      let dist = Traversal.bfs g 0 in
      let complete = ref true in
      Array.iteri
        (fun v d ->
          (* Reachable nodes with an edge can be reached by push&pull;
             isolated source (degree 0) trivially covers itself. *)
          if d >= 0 && not (Rumor_sim.Bitset.get res.Engine.knows v) then
            complete := false)
        dist;
      !complete)

(* ------------------------------------------------------------------ *)
(* Selector totality across strategies.                                *)
(* ------------------------------------------------------------------ *)

let selector_specs =
  [
    Selector.Uniform { fanout = 1 };
    Selector.Uniform { fanout = 4 };
    Selector.Quasirandom { fanout = 1 };
    Selector.Quasirandom { fanout = 3 };
    Selector.Avoid_recent { fanout = 1; window = 3 };
    Selector.Avoid_recent { fanout = 2; window = 2 };
    Selector.Avoid_recent { fanout = 4; window = 0 };
  ]

let prop_selectors_total =
  QCheck.Test.make ~count:200 ~name:"every selector yields valid distinct picks"
    QCheck.(triple small_int (int_range 0 12) (int_range 0 6))
    (fun (seed, degree, which) ->
      let spec = List.nth selector_specs (which mod List.length selector_specs) in
      let sel = Selector.make spec ~capacity:4 in
      let rng = Rng.create seed in
      let out = Array.make 8 (-1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let k = Selector.select sel ~rng ~node:(seed mod 4) ~degree ~out in
        if k <> min (Selector.fanout spec) degree then ok := false;
        let seen = Hashtbl.create 8 in
        for i = 0 to k - 1 do
          if out.(i) < 0 || out.(i) >= degree then ok := false;
          if Hashtbl.mem seen out.(i) then ok := false;
          Hashtbl.add seen out.(i) ()
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Determinism across the public surface.                              *)
(* ------------------------------------------------------------------ *)

let prop_everything_deterministic =
  QCheck.Test.make ~count:25 ~name:"graph+broadcast pipeline is a pure function of the seed"
    QCheck.small_int
    (fun seed ->
      let go () =
        let rng = Rng.create seed in
        let n = 64 + (seed mod 64) in
        let n = if n mod 2 = 1 then n + 1 else n in
        let g = Regular.sample ~rng ~n ~d:4 Regular.Pairing in
        let res =
          Run.once ~rng ~graph:g
            ~protocol:(Baselines.push_pull ~horizon:40 ())
            ~source:0 ()
        in
        (Graph.to_edges g, Engine.transmissions res, res.Engine.informed)
      in
      go () = go ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_overlay_matches_model;
      prop_informed_subset_of_reachable;
      prop_push_pull_covers_component;
      prop_selectors_total;
      prop_everything_deterministic;
    ]

let () = Alcotest.run "properties-deep" [ ("properties", qcheck_cases) ]
