(* Model checks for the packed cell vectors backing the kernel's
   compact per-node state.

   [Cells.t] is a Bytes-backed vector of fixed-width unsigned integers
   (8/16/32 bits) with a word-parallel [fill]. Its contract is plain: a
   [Cells.t] behaves exactly like an [int array] whose elements are
   clamped to the width's range, and anything outside that range is an
   explicit [Invalid_argument] — never a silent wrap. This file pins
   both halves: a qcheck model differential against a reference int
   array over random get/set/fill scripts at every width, and direct
   unit tests for the bounds/overflow raises the kernel's 16-bit dup
   tally depends on. *)

module Cells = Rumor_sim.Cells

let widths = [ Cells.W8; Cells.W16; Cells.W32 ]

let width_name w =
  Printf.sprintf "%d-bit" (Cells.bits_of_width w)

(* --- unit tests: construction and the static width helpers --- *)

let test_create_zeroed () =
  List.iter
    (fun w ->
      let t = Cells.create w 77 in
      Alcotest.(check int) "length" 77 (Cells.length t);
      Alcotest.(check int) "bits" (Cells.bits_of_width w) (Cells.bits t);
      for i = 0 to 76 do
        Alcotest.(check int) "fresh cell is zero" 0 (Cells.get t i)
      done)
    widths;
  let empty = Cells.create Cells.W8 0 in
  Alcotest.(check int) "zero-length vector" 0 (Cells.length empty)

let test_width_for () =
  Alcotest.(check int) "0 fits 8" 8 (Cells.bits_of_width (Cells.width_for 0));
  Alcotest.(check int) "255 fits 8" 8
    (Cells.bits_of_width (Cells.width_for 255));
  Alcotest.(check int) "256 needs 16" 16
    (Cells.bits_of_width (Cells.width_for 256));
  Alcotest.(check int) "65535 fits 16" 16
    (Cells.bits_of_width (Cells.width_for 65535));
  Alcotest.(check int) "65536 needs 32" 32
    (Cells.bits_of_width (Cells.width_for 65536));
  Alcotest.(check int) "2^32-1 fits 32" 32
    (Cells.bits_of_width (Cells.width_for 0xFFFFFFFF));
  Alcotest.check_raises "2^32 has no width"
    (Invalid_argument "Cells.width_for: 4294967296 exceeds 32 bits")
    (fun () -> ignore (Cells.width_for 0x100000000));
  Alcotest.check_raises "negative has no width"
    (Invalid_argument "Cells.width_for: negative value") (fun () ->
      ignore (Cells.width_for (-1)))

let test_max_value () =
  Alcotest.(check int) "8-bit max" 255 (Cells.max_value (Cells.create Cells.W8 1));
  Alcotest.(check int) "16-bit max" 65535
    (Cells.max_value (Cells.create Cells.W16 1));
  Alcotest.(check int) "32-bit max" 0xFFFFFFFF
    (Cells.max_value (Cells.create Cells.W32 1))

(* --- unit tests: bounds and overflow are loud --- *)

let test_bounds_raise () =
  List.iter
    (fun w ->
      let t = Cells.create w 10 in
      let name = width_name w in
      Alcotest.check_raises (name ^ " get -1")
        (Invalid_argument "Cells.get: index -1 out of bounds [0, 10)")
        (fun () -> ignore (Cells.get t (-1)));
      Alcotest.check_raises (name ^ " get len")
        (Invalid_argument "Cells.get: index 10 out of bounds [0, 10)")
        (fun () -> ignore (Cells.get t 10));
      Alcotest.check_raises (name ^ " set -1")
        (Invalid_argument "Cells.set: index -1 out of bounds [0, 10)")
        (fun () -> Cells.set t (-1) 0);
      Alcotest.check_raises (name ^ " set len")
        (Invalid_argument "Cells.set: index 10 out of bounds [0, 10)")
        (fun () -> Cells.set t 10 0))
    widths

(* Overflow must be an explicit failure, not a silent wrap: a 16-bit
   cell asked to hold 65536 raises, and the cell keeps its old value.
   The kernel leans on this — the duplicate tally is a 16-bit cell, and
   a round delivering 2^16 copies to one node must crash the run rather
   than quietly truncate the count. *)
let test_overflow_raises_not_wraps () =
  List.iter
    (fun w ->
      let t = Cells.create w 4 in
      let max = Cells.max_value t in
      Cells.set t 2 max;
      Alcotest.(check int) "max value stores" max (Cells.get t 2);
      Alcotest.check_raises
        (width_name w ^ " overflow")
        (Invalid_argument
           (Printf.sprintf
              "Cells.set: value %d out of range [0, %d] for %d-bit cells"
              (max + 1) max (Cells.bits t)))
        (fun () -> Cells.set t 2 (max + 1));
      Alcotest.(check int) "cell unchanged after failed set" max
        (Cells.get t 2);
      Alcotest.check_raises (width_name w ^ " negative")
        (Invalid_argument
           (Printf.sprintf
              "Cells.set: value -1 out of range [0, %d] for %d-bit cells" max
              (Cells.bits t)))
        (fun () -> Cells.set t 2 (-1)))
    widths;
  let t = Cells.create Cells.W8 4 in
  Alcotest.check_raises "fill overflow"
    (Invalid_argument
       "Cells.fill: value 256 out of range [0, 255] for 8-bit cells")
    (fun () -> Cells.fill t 256)

(* --- unit test: no bleed between neighbouring cells --- *)

let test_neighbour_isolation () =
  List.iter
    (fun w ->
      let t = Cells.create w 9 in
      let max = Cells.max_value t in
      (* Saturate every odd cell, then check the even ones stayed 0. *)
      for i = 0 to 8 do
        if i mod 2 = 1 then Cells.set t i max
      done;
      for i = 0 to 8 do
        Alcotest.(check int)
          (Printf.sprintf "%s cell %d" (width_name w) i)
          (if i mod 2 = 1 then max else 0)
          (Cells.get t i)
      done)
    widths

let test_fill_and_reset () =
  List.iter
    (fun w ->
      (* Lengths off a word boundary exercise the fill tail path. *)
      List.iter
        (fun len ->
          let t = Cells.create w len in
          let v = min 0xAB (Cells.max_value t) in
          Cells.fill t v;
          for i = 0 to len - 1 do
            Alcotest.(check int) "filled" v (Cells.get t i)
          done;
          Cells.reset t;
          for i = 0 to len - 1 do
            Alcotest.(check int) "reset" 0 (Cells.get t i)
          done)
        [ 1; 7; 8; 9; 63; 64; 65 ])
    widths

(* --- qcheck: Cells.t = int array under random scripts --- *)

(* A script is a list of operations replayed against both a [Cells.t]
   and a plain [int array]; after every step the full contents must
   agree. Values are drawn in-range (out-of-range behaviour is pinned
   by the unit tests above). *)

type op = Set of int * int | Fill of int | Reset | Get of int

let script_of_seed ~len ~max_value seed =
  let rng = Rumor_rng.Rng.create (0xCE115 + seed) in
  let value () = Rumor_rng.Rng.int rng (min max_value 1_000_000 + 1) in
  let index () = Rumor_rng.Rng.int rng len in
  List.init 200 (fun _ ->
      match Rumor_rng.Rng.int rng 8 with
      | 0 -> Fill (value ())
      | 1 -> Reset
      | 2 | 3 | 4 -> Get (index ())
      | _ -> Set (index (), value ()))

let model_agrees width =
  QCheck.Test.make ~count:60
    ~name:
      (Printf.sprintf "Cells %s = int array on random scripts"
         (width_name width))
    QCheck.small_int
    (fun seed ->
      let len = 1 + (seed mod 97) in
      let cells = Cells.create width len in
      let model = Array.make len 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Set (i, v) ->
              Cells.set cells i v;
              model.(i) <- v
          | Fill v ->
              Cells.fill cells v;
              Array.fill model 0 len v
          | Reset ->
              Cells.reset cells;
              Array.fill model 0 len 0
          | Get i -> if Cells.get cells i <> model.(i) then ok := false);
          for i = 0 to len - 1 do
            if Cells.get cells i <> model.(i) then ok := false
          done)
        (script_of_seed ~len ~max_value:(Cells.max_value cells) seed);
      !ok)

let () =
  Alcotest.run "cells"
    [
      ( "unit",
        [
          Alcotest.test_case "create zeroes every width" `Quick
            test_create_zeroed;
          Alcotest.test_case "width_for picks the tightest width" `Quick
            test_width_for;
          Alcotest.test_case "max_value per width" `Quick test_max_value;
          Alcotest.test_case "index bounds raise" `Quick test_bounds_raise;
          Alcotest.test_case "overflow raises, never wraps" `Quick
            test_overflow_raises_not_wraps;
          Alcotest.test_case "neighbouring cells do not bleed" `Quick
            test_neighbour_isolation;
          Alcotest.test_case "fill/reset across word boundaries" `Quick
            test_fill_and_reset;
        ] );
      ( "model",
        List.map QCheck_alcotest.to_alcotest
          [
            model_agrees Cells.W8;
            model_agrees Cells.W16;
            model_agrees Cells.W32;
          ] );
    ]
