(* Tests for the self-healing layer: repair epochs (Engine.run_epochs),
   the pull-timeout/backoff strategy (Repair), and the delivery
   guarantees it restores under bursty loss, crash/recovery and churn. *)

module Rng = Rumor_rng.Rng
module Regular = Rumor_gen.Regular
module Topology = Rumor_sim.Topology
module Fault = Rumor_sim.Fault
module Selector = Rumor_sim.Selector
module Protocol = Rumor_sim.Protocol
module Engine = Rumor_sim.Engine
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Repair = Rumor_core.Repair
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn

let pusher ~horizon =
  {
    Protocol.name = "test-push";
    selector = Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide =
      (fun st ~round ->
        ignore st;
        ignore round;
        { Protocol.push = true; pull = false });
    receive = (fun _ ~round -> ignore round; true);
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let regular ~seed ~n ~d =
  let rng = Rng.create seed in
  Regular.sample_connected ~rng ~n ~d Regular.Pairing

(* --- config --- *)

let test_config_defaults () =
  let cfg = Repair.config ~n:1024 () in
  Alcotest.(check int) "timeout" 2 cfg.Repair.timeout;
  Alcotest.(check int) "backoff_base" 1 cfg.Repair.backoff_base;
  Alcotest.(check int) "backoff_cap" 8 cfg.Repair.backoff_cap;
  Alcotest.(check int) "epoch_rounds" 20 cfg.Repair.epoch_rounds;
  Alcotest.(check int) "quiescence" 20 cfg.Repair.quiescence;
  Alcotest.(check int) "max_epochs" 8 cfg.Repair.max_epochs

let test_config_validation () =
  Alcotest.check_raises "timeout"
    (Invalid_argument "Repair.config: timeout must be >= 0") (fun () ->
      ignore (Repair.config ~timeout:(-1) ~n:16 ()));
  Alcotest.check_raises "backoff_base"
    (Invalid_argument "Repair.config: backoff_base must be >= 1") (fun () ->
      ignore (Repair.config ~backoff_base:0 ~n:16 ()));
  Alcotest.check_raises "cap < base"
    (Invalid_argument "Repair.config: backoff_cap must be >= backoff_base")
    (fun () -> ignore (Repair.config ~backoff_base:4 ~backoff_cap:2 ~n:16 ()));
  Alcotest.check_raises "max_epochs"
    (Invalid_argument "Repair.config: max_epochs must be >= 0") (fun () ->
      ignore (Repair.config ~max_epochs:(-1) ~n:16 ()))

(* --- run_epochs basics --- *)

(* A truncated main schedule leaves most of the network uninformed; with
   max_epochs = 0 the healing wrapper must degrade to the plain run. *)
let test_zero_epochs_is_plain_run () =
  let g = regular ~seed:11 ~n:256 ~d:8 in
  let cfg = Repair.config ~max_epochs:0 ~n:256 () in
  let rng = Rng.create 7 in
  let r =
    Repair.heal ~config:cfg ~rng ~graph:g ~protocol:(pusher ~horizon:3)
      ~source:0 ()
  in
  let plain =
    Engine.run ~rng:(Rng.create 7)
      ~topology:(Topology.of_graph g)
      ~protocol:(pusher ~horizon:3) ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "no epochs" 0 (Engine.epochs_used r);
  Alcotest.(check int) "no repair tx" 0 (Engine.repair_tx r);
  Alcotest.(check int) "same informed" plain.Engine.informed r.Engine.informed;
  Alcotest.(check int) "same rounds" plain.Engine.rounds r.Engine.rounds

(* A main schedule that already covers everyone must cost zero epochs. *)
let test_complete_run_needs_no_epoch () =
  let g = regular ~seed:12 ~n:256 ~d:8 in
  let cfg = Repair.config ~n:256 () in
  let r =
    Repair.heal ~config:cfg ~rng:(Rng.create 3) ~graph:g
      ~protocol:(pusher ~horizon:40) ~source:0 ()
  in
  Alcotest.(check bool) "success" true (Engine.success r);
  Alcotest.(check int) "no epochs" 0 (Engine.epochs_used r);
  Alcotest.(check int) "no repair tx" 0 (Engine.repair_tx r)

(* If the rumor goes extinct there is nobody left to pull from, and the
   epoch loop must stop instead of burning its budget. Frontier strike
   at round 1 kills the only knower; recovery amnesia erases the copy. *)
let test_extinct_rumor_stops_epochs () =
  let g = regular ~seed:13 ~n:64 ~d:8 in
  let fault =
    Fault.plan
      ~strike:(Fault.strike ~adversary:Fault.Frontier ~at_round:1 ~count:1 ())
      ~recover_rate:1.0 ()
  in
  let cfg = Repair.config ~n:64 () in
  let r =
    Repair.heal ~fault ~forget_on_recover:true ~config:cfg ~rng:(Rng.create 5)
      ~graph:g ~protocol:(pusher ~horizon:30) ~source:0 ()
  in
  Alcotest.(check int) "nobody informed" 0 r.Engine.informed;
  Alcotest.(check int) "no epochs wasted" 0 (Engine.epochs_used r);
  Alcotest.(check bool) "not a success" false (Engine.success r)

(* --- fault-free repair cost: O(n) transmissions, pull-only --- *)

let test_fault_free_overhead_linear () =
  let n = 1024 and d = 8 in
  let g = regular ~seed:21 ~n ~d in
  let cfg = Repair.config ~n () in
  (* Truncate the main schedule after 3 rounds: only a handful of nodes
     know the rumor, so repair has to inform nearly all of [n]. *)
  let r =
    Repair.heal ~config:cfg ~rng:(Rng.create 9) ~graph:g
      ~protocol:(pusher ~horizon:3) ~source:0 ()
  in
  Alcotest.(check bool) "healed to full coverage" true (Engine.success r);
  Alcotest.(check bool) "used at least one epoch" true
    (Engine.epochs_used r >= 1);
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "epoch %d is pull-only" e.Engine.epoch)
        0 e.Engine.repair_push_tx;
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d tx is O(n)" e.Engine.epoch)
        true
        (e.Engine.repair_pull_tx <= 2 * n))
    r.Engine.repair;
  (* Every uninformed node is informed at most once per epoch and stops
     pulling as soon as it knows, so the whole healing run stays linear. *)
  Alcotest.(check bool) "total repair tx is O(n)" true
    (Engine.repair_tx r <= 2 * n)

(* --- the hostile plan from the acceptance bar ---

   Bursty loss >= 0.2, crash + recovery with amnesia, and join/leave
   churn, all at once. Without repair the run provably strands live
   uninformed nodes; with repair, coverage must reach 1.0 within the
   epoch budget. Both arms share the seed, so the bare run is exactly
   the healed run's main schedule. *)

let hostile_fault () =
  Fault.plan
    ~burst:(Fault.burst ~loss:0.25 ~burst_len:4.)
    ~crash_rate:0.01 ~recover_rate:0.25 ()

let hostile_run ~with_repair ~seed ~n ~d =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let o = Overlay.of_graph ~capacity:(2 * n) g in
  let protocol = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:n ~d ()) in
  let joined = ref [] in
  let on_round_end _ =
    for _ = 1 to 4 do
      let ev = Churn.session o ~rng ~d ~join_prob:0.5 ~leave_prob:0.5 () in
      match ev.Churn.joined with
      | Some v -> joined := v :: !joined
      | None -> ()
    done
  in
  let reset () =
    let l = !joined in
    joined := [];
    l
  in
  let topology = Overlay.to_topology o in
  let fault = hostile_fault () in
  if with_repair then
    let config = Repair.config ~n () in
    Repair.self_heal ~fault ~config ~reset ~on_round_end ~rng ~topology
      ~protocol ~sources:[ 0 ] ()
  else
    Engine.run ~fault ~forget_on_recover:true ~reset ~on_round_end ~rng
      ~topology ~protocol ~sources:[ 0 ] ()

let test_hostile_plan_heals () =
  let n = 1024 and d = 8 and seed = 3 in
  let bare = hostile_run ~with_repair:false ~seed ~n ~d in
  Alcotest.(check bool) "bare run strands uninformed nodes" true
    (bare.Engine.informed < bare.Engine.population);
  let healed = hostile_run ~with_repair:true ~seed ~n ~d in
  Alcotest.(check bool) "healed run reaches total coverage" true
    (Engine.success healed);
  let cfg = Repair.config ~n () in
  Alcotest.(check bool) "within the epoch budget" true
    (Engine.epochs_used healed <= cfg.Repair.max_epochs);
  Alcotest.(check bool) "repair cost stays linear per epoch" true
    (Engine.repair_tx healed <= 2 * n * max 1 (Engine.epochs_used healed))

(* The per-epoch accounting must agree with the aggregate result. *)
let test_epoch_accounting_consistent () =
  let n = 1024 and d = 8 in
  let g = regular ~seed:31 ~n ~d in
  let cfg = Repair.config ~n () in
  let rng = Rng.create 17 in
  let bare =
    Engine.run ~rng:(Rng.create 17)
      ~topology:(Topology.of_graph g)
      ~protocol:(pusher ~horizon:3) ~sources:[ 0 ] ()
  in
  let r =
    Repair.heal ~config:cfg ~rng ~graph:g ~protocol:(pusher ~horizon:3)
      ~source:0 ()
  in
  let epoch_rounds =
    List.fold_left (fun a e -> a + e.Engine.epoch_rounds) 0 r.Engine.repair
  in
  let epoch_pull =
    List.fold_left (fun a e -> a + e.Engine.repair_pull_tx) 0 r.Engine.repair
  in
  Alcotest.(check int) "rounds add up" r.Engine.rounds
    (bare.Engine.rounds + epoch_rounds);
  Alcotest.(check int) "pull tx adds up" r.Engine.pull_tx
    (bare.Engine.pull_tx + epoch_pull);
  Alcotest.(check int) "repair_tx matches stats" (Engine.repair_tx r) epoch_pull;
  (match r.Engine.repair with
  | [] -> Alcotest.fail "expected at least one epoch"
  | stats ->
      List.iteri
        (fun i e -> Alcotest.(check int) "epochs numbered from 1" (i + 1)
            e.Engine.epoch)
        stats);
  Alcotest.(check (float 1e-9)) "coverage helper" 1.0 (Engine.coverage r)

(* --- backoff policy properties ---

   The [Repair.backoff] policy is shared verbatim by the serve layer's
   session retries (milliseconds) and the repair epochs (rounds), so
   its envelope is pinned by properties rather than a few examples. *)

let backoff_gen =
  QCheck.(
    map
      (fun (base, capx) -> Repair.backoff ~base ~cap:(base * capx) ())
      (pair (int_range 1 1000) (int_range 1 64)))

let prop_backoff_window_formula =
  QCheck.Test.make ~count:300
    ~name:"window_k = min cap (base * 2^min(k,16)) exactly"
    QCheck.(pair backoff_gen (int_range 0 40))
    (fun (b, attempt) ->
      let expect =
        let doubled =
          if attempt >= 16 then b.Repair.base * 65536
          else b.Repair.base * (1 lsl attempt)
        in
        min b.Repair.cap doubled
      in
      Repair.backoff_window b ~attempt = expect)

let prop_backoff_window_monotone_saturates =
  QCheck.Test.make ~count:300
    ~name:"windows double monotonically then saturate at cap"
    backoff_gen
    (fun b ->
      let ws = List.init 24 (fun k -> Repair.backoff_window b ~attempt:k) in
      let rec check prev = function
        | [] -> true
        | w :: rest ->
            w >= prev && w <= b.Repair.cap
            && (w = b.Repair.cap || w = 2 * prev || prev = 0)
            && check w rest
      in
      (match ws with
      | w0 :: rest -> w0 = min b.Repair.cap b.Repair.base && check w0 rest
      | [] -> false)
      && List.nth ws 23 = b.Repair.cap)

let prop_backoff_gap_in_window =
  QCheck.Test.make ~count:500
    ~name:"gap_k uniformly drawn within [1, window_k]"
    QCheck.(triple backoff_gen (int_range 0 20) small_int)
    (fun (b, attempt, seed) ->
      let rng = Rng.create (seed + 17) in
      let w = Repair.backoff_window b ~attempt in
      List.for_all
        (fun _ ->
          let g = Repair.backoff_gap b ~rng ~attempt in
          g >= 1 && g <= w)
        (List.init 20 Fun.id))

let prop_backoff_of_config_consistent =
  QCheck.Test.make ~count:100
    ~name:"backoff_of_config embeds the repair config's policy"
    QCheck.(pair (int_range 1 32) (int_range 1 8))
    (fun (base, capx) ->
      let cfg =
        Repair.config ~n:1024 ~backoff_base:base ~backoff_cap:(base * capx) ()
      in
      let b = Repair.backoff_of_config cfg in
      b.Repair.base = cfg.Repair.backoff_base
      && b.Repair.cap = cfg.Repair.backoff_cap
      && List.for_all
           (fun k ->
             Repair.backoff_window b ~attempt:k
             = min cfg.Repair.backoff_cap
                 (cfg.Repair.backoff_base * (1 lsl k)))
           [ 0; 1; 2; 3; 4 ])

let test_backoff_validation () =
  Alcotest.check_raises "base < 1"
    (Invalid_argument "Repair.backoff: base must be >= 1") (fun () ->
      ignore (Repair.backoff ~base:0 ()));
  Alcotest.check_raises "cap < base"
    (Invalid_argument "Repair.backoff: cap must be >= base") (fun () ->
      ignore (Repair.backoff ~base:10 ~cap:5 ()));
  Alcotest.check_raises "negative attempt"
    (Invalid_argument "Repair.backoff_window: attempt < 0") (fun () ->
      ignore (Repair.backoff_window (Repair.backoff ()) ~attempt:(-1)))

let backoff_qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_backoff_window_formula;
      prop_backoff_window_monotone_saturates;
      prop_backoff_gap_in_window;
      prop_backoff_of_config_consistent;
    ]

let () =
  Alcotest.run "repair"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "max_epochs 0 = plain run" `Quick
            test_zero_epochs_is_plain_run;
          Alcotest.test_case "complete run needs none" `Quick
            test_complete_run_needs_no_epoch;
          Alcotest.test_case "extinction stops the loop" `Quick
            test_extinct_rumor_stops_epochs;
          Alcotest.test_case "accounting consistent" `Quick
            test_epoch_accounting_consistent;
        ] );
      ( "guarantees",
        [
          Alcotest.test_case "fault-free overhead O(n)" `Quick
            test_fault_free_overhead_linear;
          Alcotest.test_case "hostile plan heals" `Slow test_hostile_plan_heals;
        ] );
      ( "backoff",
        Alcotest.test_case "validation" `Quick test_backoff_validation
        :: backoff_qcheck_cases );
    ]
