(* Golden regression tests: exact outputs for fixed seeds.

   Everything in this library is a pure function of its integer seeds,
   so these values must never change unless an algorithm is modified on
   purpose. They protect refactorings: an accidental change to the PRNG
   stream, the configuration model's pairing order, the selector, or
   the engine's delivery order shows up here immediately, even when the
   statistical tests still pass. Update the constants (only) alongside
   an intentional behavioural change. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Regular = Rumor_gen.Regular
module Classic = Rumor_gen.Classic
module Engine = Rumor_sim.Engine
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run

let test_rng_stream () =
  let r = Rng.create 12345 in
  Alcotest.(check int64) "word 1" (-4725905248023948133L) (Rng.bits64 r);
  Alcotest.(check int64) "word 2" 2398916695208396998L (Rng.bits64 r);
  Alcotest.(check int64) "word 3" (-676359223724682360L) (Rng.bits64 r)

let test_bounded_ints () =
  let r = Rng.create 777 in
  Alcotest.(check int) "draw 1" 74 (Rng.int r 1000);
  Alcotest.(check int) "draw 2" 814 (Rng.int r 1000);
  Alcotest.(check int) "draw 3" 346 (Rng.int r 1000)

let test_configuration_model () =
  let rng = Rng.create 2024 in
  let g = Regular.sample ~rng ~n:100 ~d:6 Regular.Pairing in
  Alcotest.(check int) "edges" 300 (Graph.m g);
  Alcotest.(check int) "self loops" 5 (Graph.count_self_loops g);
  Alcotest.(check int) "parallel copies" 8 (Graph.count_parallel_edges g);
  Alcotest.(check int) "first neighbour of 0" 47 (Graph.neighbor g 0 0)

let test_algorithm_broadcast () =
  let rng = Rng.create 31337 in
  let g = Regular.sample_connected ~rng ~n:1024 ~d:8 Regular.Pairing in
  let p = Algorithm.make (Params.make ~n_estimate:1024 ~d:8 ()) in
  let res = Run.once ~rng ~graph:g ~protocol:p ~source:0 () in
  (* These values survived the phase-4 off-by-one fix (last round
     24 -> 25 for n=1024): this run completes in round 11, before the
     pull round, so no node is "active" in phase 4 and the engine
     quiesces at round 15 either way. Runs that do exercise phase 4
     (incomplete after the pull) now get one more push round, as the
     paper prescribes. *)
  Alcotest.(check int) "rounds" 15 res.Engine.rounds;
  Alcotest.(check int) "transmissions" 24536 (Engine.transmissions res);
  Alcotest.(check (option int)) "completion" (Some 11) res.Engine.completion_round

let test_push_broadcast () =
  let rng = Rng.create 555 in
  let res =
    Run.once ~stop_when_complete:true ~rng ~graph:(Classic.complete 128)
      ~protocol:(Baselines.push ~horizon:100 ())
      ~source:0 ()
  in
  Alcotest.(check int) "rounds" 12 res.Engine.rounds;
  Alcotest.(check int) "transmissions" 624 (Engine.transmissions res)

let () =
  Alcotest.run "golden"
    [
      ( "golden",
        [
          Alcotest.test_case "rng stream" `Quick test_rng_stream;
          Alcotest.test_case "bounded ints" `Quick test_bounded_ints;
          Alcotest.test_case "configuration model" `Quick test_configuration_model;
          Alcotest.test_case "algorithm broadcast" `Quick test_algorithm_broadcast;
          Alcotest.test_case "push broadcast" `Quick test_push_broadcast;
        ] );
    ]
