(* Tests for the composable fault plan: Gilbert–Elliott bursty loss,
   asymmetric per-direction loss, crash schedules and adversarial
   strikes, plus the bit-identity guarantee of [Fault.none]. *)

module Rng = Rumor_rng.Rng
module Classic = Rumor_gen.Classic
module Topology = Rumor_sim.Topology
module Fault = Rumor_sim.Fault
module Selector = Rumor_sim.Selector
module Protocol = Rumor_sim.Protocol
module Engine = Rumor_sim.Engine
module Async = Rumor_sim.Async
module Repair = Rumor_core.Repair

let pusher ?(push = true) ?(pull = false) ~horizon () =
  {
    Protocol.name = "test-push";
    selector = Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide = (fun st ~round -> ignore round; ignore st; { Protocol.push; pull });
    receive = (fun _ ~round -> ignore round; true);
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let run ?fault ?(pull = false) ?(push = true) ~graph ~horizon ~seed () =
  let rng = Rng.create seed in
  Engine.run ?fault ~rng
    ~topology:(Topology.of_graph graph)
    ~protocol:(pusher ~push ~pull ~horizon ())
    ~sources:[ 0 ] ()

(* --- constructors --- *)

let test_burst_validation () =
  Alcotest.check_raises "loss >= 1"
    (Invalid_argument "Fault.burst: loss must be in [0, 1)") (fun () ->
      ignore (Fault.burst ~loss:1. ~burst_len:4.));
  Alcotest.check_raises "burst_len < 1"
    (Invalid_argument "Fault.burst: burst_len must be >= 1") (fun () ->
      ignore (Fault.burst ~loss:0.1 ~burst_len:0.5));
  (* loss 0.9 with burst_len 2 needs an enter probability > 1. *)
  Alcotest.check_raises "unrealisable combination"
    (Invalid_argument "Fault.burst: loss too high for this burst_len")
    (fun () -> ignore (Fault.burst ~loss:0.9 ~burst_len:2.))

let test_strike_validation () =
  Alcotest.check_raises "at_round < 1"
    (Invalid_argument "Fault.strike: at_round must be >= 1") (fun () ->
      ignore (Fault.strike ~at_round:0 ~count:1 ()));
  Alcotest.check_raises "count < 0"
    (Invalid_argument "Fault.strike: count must be >= 0") (fun () ->
      ignore (Fault.strike ~at_round:1 ~count:(-1) ()))

let test_plan_validation () =
  Alcotest.check_raises "crash_rate"
    (Invalid_argument "Fault.plan: crash_rate out of range") (fun () ->
      ignore (Fault.plan ~crash_rate:1.5 ()))

(* --- Gilbert–Elliott chain --- *)

(* The chain's bad-state occupancy must match the plan's stationary
   loss. 200 independent chains, 1000 rounds after burn-in: the
   standard error of the occupancy estimate is well under 0.01. *)
let test_burst_stationary () =
  let loss = 0.2 in
  let plan = Fault.plan ~burst:(Fault.burst ~loss ~burst_len:4.) () in
  let capacity = 200 in
  let rt = Fault.start plan ~capacity in
  let rng = Rng.create 42 in
  let deg _ = 0 and alive _ = true and informed _ = false in
  for r = 1 to 200 do
    Fault.begin_round rt ~rng ~round:r ~degree:deg ~alive ~informed
  done;
  let bad = ref 0 and total = ref 0 in
  for r = 201 to 1200 do
    Fault.begin_round rt ~rng ~round:r ~degree:deg ~alive ~informed;
    for v = 0 to capacity - 1 do
      incr total;
      if Fault.bursting rt v then incr bad
    done
  done;
  let rate = float_of_int !bad /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "occupancy %.3f within 0.02 of %.2f" rate loss)
    true
    (abs_float (rate -. loss) < 0.02)

let test_bursting_sender_drops () =
  (* A node in the bad state loses every transmission it sends; a node
     in the good state (no other loss configured) loses none. *)
  let plan = Fault.plan ~burst:(Fault.burst ~loss:0.5 ~burst_len:2.) () in
  let rt = Fault.start plan ~capacity:64 in
  let rng = Rng.create 7 in
  let deg _ = 0 and alive _ = true and informed _ = false in
  for r = 1 to 50 do
    Fault.begin_round rt ~rng ~round:r ~degree:deg ~alive ~informed
  done;
  for v = 0 to 63 do
    let expected = not (Fault.bursting rt v) in
    Alcotest.(check bool) "push matches burst state" expected
      (Fault.push_ok rt rng ~sender:v);
    Alcotest.(check bool) "pull matches burst state" expected
      (Fault.pull_ok rt rng ~sender:v)
  done

(* --- total loss at the plan level --- *)

let test_plan_total_link_loss () =
  let fault = Fault.plan ~link_loss:1. () in
  let res = run ~fault ~graph:(Classic.complete 32) ~horizon:30 ~seed:3 () in
  Alcotest.(check int) "only the source knows" 1 res.Engine.informed

let test_push_loss_blocks_push_only () =
  let fault = Fault.plan ~push_loss:1. () in
  let res = run ~fault ~graph:(Classic.complete 32) ~horizon:30 ~seed:4 () in
  Alcotest.(check int) "push-only protocol silenced" 1 res.Engine.informed

let test_push_loss_spares_pull () =
  (* Asymmetry: total push loss must not affect a pull-only protocol. *)
  let fault = Fault.plan ~push_loss:1. () in
  let res =
    run ~fault ~push:false ~pull:true ~graph:(Classic.complete 32) ~horizon:60
      ~seed:5 ()
  in
  Alcotest.(check bool) "pull still completes" true (Engine.success res)

let test_pull_loss_blocks_pull_only () =
  let fault = Fault.plan ~pull_loss:1. () in
  let res =
    run ~fault ~push:false ~pull:true ~graph:(Classic.complete 32) ~horizon:30
      ~seed:6 ()
  in
  Alcotest.(check int) "pull-only protocol silenced" 1 res.Engine.informed

(* --- crash schedules --- *)

let survivors plan seed =
  let rt = Fault.start plan ~capacity:50 in
  let rng = Rng.create seed in
  let deg v = v and alive _ = true and informed v = v < 10 in
  for r = 1 to 10 do
    Fault.begin_round rt ~rng ~round:r ~degree:deg ~alive ~informed
  done;
  List.init 50 (Fault.active rt)

let test_crash_schedule_deterministic () =
  let plan =
    Fault.plan ~crash_rate:0.05
      ~strike:(Fault.strike ~at_round:3 ~count:5 ())
      ()
  in
  Alcotest.(check (list bool))
    "same seed, same crash schedule" (survivors plan 11) (survivors plan 11);
  let up = List.filter (fun b -> b) (survivors plan 11) in
  Alcotest.(check bool) "somebody crashed" true (List.length up < 50)

let test_highest_degree_strike_deterministic () =
  (* Degree of node v is v: the strike must kill exactly 47, 48, 49,
     whatever the rng seed. *)
  let plan =
    Fault.plan
      ~strike:(Fault.strike ~adversary:Fault.Highest_degree ~at_round:1
                 ~count:3 ())
      ()
  in
  List.iter
    (fun seed ->
      let alive = survivors plan seed in
      List.iteri
        (fun v up ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d" v)
            (v < 47) up)
        alive)
    [ 1; 2; 3 ]

let test_frontier_strike_hits_informed () =
  (* Only informed nodes (ids < 10 in [survivors]) are eligible. *)
  let plan =
    Fault.plan
      ~strike:(Fault.strike ~adversary:Fault.Frontier ~at_round:1 ~count:50 ())
      ()
  in
  let alive = survivors plan 8 in
  List.iteri
    (fun v up -> Alcotest.(check bool) "informed down, rest up" (v >= 10) up)
    alive

let test_frontier_strike_kills_rumor () =
  (* Killing the whole frontier right after the first round leaves no
     copy of the rumor anywhere: no protocol can recover. *)
  let fault =
    Fault.plan
      ~strike:(Fault.strike ~adversary:Fault.Frontier ~at_round:2 ~count:32 ())
      ()
  in
  let res = run ~fault ~graph:(Classic.complete 32) ~horizon:40 ~seed:9 () in
  Alcotest.(check int) "no informed survivor" 0 res.Engine.informed;
  Alcotest.(check bool) "failure" false (Engine.success res)

let test_crash_stop_shrinks_population () =
  let fault = Fault.plan ~crash_rate:0.05 () in
  let res = run ~fault ~graph:(Classic.complete 64) ~horizon:30 ~seed:10 () in
  Alcotest.(check bool) "population shrank" true (res.Engine.population < 64)

let test_recovery_restores_nodes () =
  (* With certain recovery, a crash never lasts past the next round:
     down_count after begin_round can only reflect this round's crashes. *)
  let plan = Fault.plan ~crash_rate:0.3 ~recover_rate:1. () in
  let rt = Fault.start plan ~capacity:100 in
  let rng = Rng.create 12 in
  let deg _ = 0 and alive _ = true and informed _ = false in
  let saw_recovery = ref false in
  let prev = ref 0 in
  for r = 1 to 40 do
    Fault.begin_round rt ~rng ~round:r ~degree:deg ~alive ~informed;
    if Fault.down_count rt < !prev then saw_recovery := true;
    prev := Fault.down_count rt
  done;
  Alcotest.(check bool) "recoveries happened" true !saw_recovery;
  Alcotest.(check bool) "may_recover reported" true (Fault.may_recover rt)

(* --- Fault.none bit-identity --- *)

let test_none_roundtrip () =
  (* [Fault.none] must consume no randomness: a run with it is
     bit-identical to a run with no fault argument at all. *)
  let base = run ~graph:(Classic.complete 64) ~horizon:30 ~seed:99 () in
  let with_none =
    run ~fault:Fault.none ~graph:(Classic.complete 64) ~horizon:30 ~seed:99 ()
  in
  Alcotest.(check int) "same informed" base.Engine.informed
    with_none.Engine.informed;
  Alcotest.(check int) "same transmissions" (Engine.transmissions base)
    (Engine.transmissions with_none);
  Alcotest.(check int) "same rounds" base.Engine.rounds with_none.Engine.rounds;
  Alcotest.(check (option int)) "same completion" base.Engine.completion_round
    with_none.Engine.completion_round;
  Alcotest.(check int) "same channels" base.Engine.channels
    with_none.Engine.channels

let test_empty_plan_equals_none () =
  Alcotest.(check bool) "plan () = none" true (Fault.plan () = Fault.none)

(* --- the stateless view: per-direction loss under Async --- *)

let test_delivery_ok_directional () =
  let rng = Rng.create 21 in
  let push_lossy = Fault.plan ~push_loss:1. () in
  let pull_lossy = Fault.plan ~pull_loss:1. () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "push loss kills pushes" false
      (Fault.delivery_ok ~dir:`Push push_lossy rng);
    Alcotest.(check bool) "push loss spares pulls" true
      (Fault.delivery_ok ~dir:`Pull push_lossy rng);
    Alcotest.(check bool) "undirected view skips push_loss" true
      (Fault.delivery_ok push_lossy rng);
    Alcotest.(check bool) "pull loss kills pulls" false
      (Fault.delivery_ok ~dir:`Pull pull_lossy rng);
    Alcotest.(check bool) "pull loss spares pushes" true
      (Fault.delivery_ok ~dir:`Push pull_lossy rng)
  done

let test_async_honours_directional_loss () =
  let silenced =
    Async.run
      ~fault:(Fault.plan ~push_loss:1. ())
      ~rng:(Rng.create 22) ~graph:(Classic.complete 32)
      ~protocol:(pusher ~horizon:30 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "push loss silences an async pusher" 1
    silenced.Async.informed;
  let spared =
    Async.run
      ~fault:(Fault.plan ~pull_loss:1. ())
      ~rng:(Rng.create 22) ~graph:(Classic.complete 32)
      ~protocol:(pusher ~horizon:30 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "pull loss spares an async pusher" 32
    spared.Async.informed

(* --- regression: crash recovering after completion needs repair ---

   Victims crash after the broadcast completes and recover (with
   amnesia) only once every pusher has stopped transmitting: without a
   repair layer they stay uninformed forever, and [Repair.self_heal]
   must close exactly that gap. *)

let bounded_pusher ~push_until ~horizon =
  {
    Protocol.name = "bounded-push";
    selector = Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide =
      (fun st ~round ->
        ignore st;
        { Protocol.push = round <= push_until; pull = false });
    receive = (fun _ ~round -> ignore round; true);
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let test_recovery_after_completion_needs_repair () =
  let n = 64 in
  let fault =
    Fault.plan ~strike:(Fault.strike ~at_round:18 ~count:4 ()) ~recover_rate:1.
      ()
  in
  let protocol = bounded_pusher ~push_until:16 ~horizon:20 in
  let bare =
    Engine.run ~fault ~forget_on_recover:true ~rng:(Rng.create 41)
      ~topology:(Topology.of_graph (Classic.complete n))
      ~protocol ~sources:[ 0 ] ()
  in
  (match bare.Engine.completion_round with
  | Some c -> Alcotest.(check bool) "completed before the strike" true (c < 18)
  | None -> Alcotest.fail "broadcast did not complete before the strike");
  Alcotest.(check int) "victims recovered" n bare.Engine.population;
  Alcotest.(check int) "and stay uninformed without repair" (n - 4)
    bare.Engine.informed;
  let healed =
    Repair.heal ~fault
      ~config:(Repair.config ~n ())
      ~rng:(Rng.create 41) ~graph:(Classic.complete n) ~protocol ~source:0 ()
  in
  Alcotest.(check bool) "repair re-informs the amnesiacs" true
    (Engine.success healed);
  Alcotest.(check int) "nobody left behind" n healed.Engine.informed;
  Alcotest.(check bool) "within one or two epochs" true
    (Engine.epochs_used healed >= 1
    && Engine.epochs_used healed <= (Repair.config ~n ()).Repair.max_epochs)

let () =
  Alcotest.run "rumor_fault"
    [
      ( "constructors",
        [
          Alcotest.test_case "burst validation" `Quick test_burst_validation;
          Alcotest.test_case "strike validation" `Quick test_strike_validation;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "empty plan = none" `Quick
            test_empty_plan_equals_none;
        ] );
      ( "burst",
        [
          Alcotest.test_case "stationary occupancy" `Quick
            test_burst_stationary;
          Alcotest.test_case "bad state drops sends" `Quick
            test_bursting_sender_drops;
        ] );
      ( "loss",
        [
          Alcotest.test_case "total link loss" `Quick test_plan_total_link_loss;
          Alcotest.test_case "push loss blocks push" `Quick
            test_push_loss_blocks_push_only;
          Alcotest.test_case "push loss spares pull" `Quick
            test_push_loss_spares_pull;
          Alcotest.test_case "pull loss blocks pull" `Quick
            test_pull_loss_blocks_pull_only;
          Alcotest.test_case "delivery_ok directions" `Quick
            test_delivery_ok_directional;
          Alcotest.test_case "async directional loss" `Quick
            test_async_honours_directional_loss;
        ] );
      ( "crash",
        [
          Alcotest.test_case "deterministic schedule" `Quick
            test_crash_schedule_deterministic;
          Alcotest.test_case "highest-degree strike" `Quick
            test_highest_degree_strike_deterministic;
          Alcotest.test_case "frontier strike targets informed" `Quick
            test_frontier_strike_hits_informed;
          Alcotest.test_case "frontier strike kills rumor" `Quick
            test_frontier_strike_kills_rumor;
          Alcotest.test_case "crash-stop shrinks population" `Quick
            test_crash_stop_shrinks_population;
          Alcotest.test_case "recovery restores nodes" `Quick
            test_recovery_restores_nodes;
          Alcotest.test_case "post-completion recovery needs repair" `Quick
            test_recovery_after_completion_needs_repair;
        ] );
      ( "identity",
        [ Alcotest.test_case "none round-trips" `Quick test_none_roundtrip ] );
    ]
