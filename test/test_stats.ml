(* Tests for the rumor_stats library: summaries, histograms, regression,
   tables and experiment replication. *)

module Rng = Rumor_rng.Rng
module Summary = Rumor_stats.Summary
module Histogram = Rumor_stats.Histogram
module Regression = Rumor_stats.Regression
module Table = Rumor_stats.Table
module Experiment = Rumor_stats.Experiment

let checkf = Alcotest.(check (float 1e-9))

(* --- Summary --- *)

let test_summary_known () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  checkf "mean" 3. s.Summary.mean;
  checkf "min" 1. s.Summary.min;
  checkf "max" 5. s.Summary.max;
  checkf "median" 3. s.Summary.median;
  (* Sample stddev of 1..5 is sqrt(2.5). *)
  checkf "stddev" (sqrt 2.5) s.Summary.stddev

let test_summary_singleton () =
  let s = Summary.of_list [ 7. ] in
  checkf "mean" 7. s.Summary.mean;
  checkf "stddev" 0. s.Summary.stddev;
  checkf "ci" 0. (Summary.ci95_halfwidth s);
  checkf "median" 7. s.Summary.median

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (Summary.of_array [||]))

let test_summary_unsorted_input () =
  let s = Summary.of_list [ 5.; 1.; 3.; 2.; 4. ] in
  checkf "median of unsorted" 3. s.Summary.median;
  checkf "p10" 1.4 s.Summary.p10;
  checkf "p90" 4.6 s.Summary.p90

let test_summary_of_ints () =
  let s = Summary.of_ints [ 2; 4; 6 ] in
  checkf "mean" 4. s.Summary.mean

let test_percentile () =
  let sorted = [| 10.; 20.; 30.; 40. |] in
  checkf "p0" 10. (Summary.percentile sorted 0.);
  checkf "p100" 40. (Summary.percentile sorted 1.);
  checkf "p50 interpolates" 25. (Summary.percentile sorted 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Summary.percentile: q out of range") (fun () ->
      ignore (Summary.percentile sorted 1.5))

let test_ci_shrinks () =
  let wide = Summary.of_list [ 0.; 10. ] in
  let narrow = Summary.of_list [ 0.; 10.; 0.; 10.; 0.; 10.; 0.; 10. ] in
  Alcotest.(check bool) "more samples tighter ci" true
    (Summary.ci95_halfwidth narrow < Summary.ci95_halfwidth wide)

let test_summary_pp () =
  let s = Summary.of_list [ 1.; 2.; 3. ] in
  let str = Format.asprintf "%a" Summary.pp s in
  Alcotest.(check bool) "non-empty" true (String.length str > 0)

(* --- Histogram --- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add h 0.5;
  Histogram.add h 1.;
  Histogram.add h 9.9;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check int) "first bin" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "last bin" 1 (Histogram.bin_count h 4);
  Alcotest.(check int) "middle empty" 0 (Histogram.bin_count h 2)

let test_histogram_clamping () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h (-5.);
  Histogram.add h 42.;
  Alcotest.(check int) "low clamps" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "high clamps" 1 (Histogram.bin_count h 1)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  let lo, hi = Histogram.bin_bounds h 1 in
  checkf "bin lo" 2. lo;
  checkf "bin hi" 4. hi;
  Alcotest.check_raises "bad index" (Invalid_argument "Histogram.bin_count")
    (fun () -> ignore (Histogram.bin_count h 5))

let test_histogram_validation () =
  Alcotest.check_raises "no bins" (Invalid_argument "Histogram.create: bins < 1")
    (fun () -> ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "bad range" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3))

let test_histogram_rejects_non_finite () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  let reject x =
    Alcotest.check_raises "non-finite"
      (Invalid_argument "Histogram.add: non-finite sample") (fun () ->
        Histogram.add h x)
  in
  reject Float.nan;
  reject Float.infinity;
  reject Float.neg_infinity;
  Alcotest.(check int) "nothing recorded" 0 (Histogram.count h)

let test_summary_nan_ordering () =
  (* Float.compare sorts NaN below every number, so the finite order
     statistics of a NaN-free sample are unaffected by the sort being
     total — and a NaN sample cannot silently scramble the array the
     way polymorphic compare could. *)
  let s = Summary.of_list [ 3.; 1.; 2. ] in
  checkf "min" 1. s.Summary.min;
  checkf "max" 3. s.Summary.max;
  let with_nan = Summary.of_list [ 2.; Float.nan; 1. ] in
  checkf "nan sorts first" 2. with_nan.Summary.max

let test_histogram_pp () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h 0.25;
  let s = Format.asprintf "%a" Histogram.pp h in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* --- Regression --- *)

let test_linear_exact () =
  let fit = Regression.linear [ (0., 1.); (1., 3.); (2., 5.) ] in
  checkf "slope" 2. fit.Regression.slope;
  checkf "intercept" 1. fit.Regression.intercept;
  checkf "r2" 1. fit.Regression.r2

let test_linear_noise () =
  let rng = Rng.create 1 in
  let points =
    List.init 200 (fun i ->
        let x = float_of_int i in
        (x, (3. *. x) +. 7. +. Rumor_rng.Dist.normal rng ~mu:0. ~sigma:0.5))
  in
  let fit = Regression.linear points in
  Alcotest.(check bool) "slope near 3" true (abs_float (fit.Regression.slope -. 3.) < 0.02);
  Alcotest.(check bool) "good r2" true (fit.Regression.r2 > 0.99)

let test_linear_validation () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need >= 2 points") (fun () ->
      ignore (Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "zero x variance"
    (Invalid_argument "Regression.linear: zero variance in x") (fun () ->
      ignore (Regression.linear [ (1., 1.); (1., 2.) ]))

let test_loglog_exponent () =
  (* y = 5 x^2 exactly. *)
  let points = List.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5. *. x *. x))
  in
  let fit = Regression.loglog points in
  Alcotest.(check bool) "exponent 2" true (abs_float (fit.Regression.slope -. 2.) < 1e-9);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Regression.loglog: non-positive data") (fun () ->
      ignore (Regression.loglog [ (1., 0.); (2., 1.) ]))

let test_semilogx_slope () =
  (* y = 4 log2 x + 1. *)
  let points =
    List.map (fun x -> (x, (4. *. (log x /. log 2.)) +. 1.)) [ 2.; 4.; 8.; 16. ]
  in
  let fit = Regression.semilogx points in
  checkf "slope per doubling" 4. fit.Regression.slope;
  checkf "intercept" 1. fit.Regression.intercept

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "push"; "12" ];
  Table.add_row t [ "pull-variant"; "3" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* Right-aligned column: both data lines end at the same column. *)
  (match lines with
  | _ :: _ :: a :: b :: _ ->
      Alcotest.(check int) "aligned widths" (String.length a) (String.length b)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "contains header" true
    (String.length s >= 4 && String.sub s 0 4 = "name")

let test_table_width_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_float_rows () =
  let t = Table.create ~columns:[ ("x", Table.Right); ("y", Table.Right) ] in
  Table.add_float_row t ~decimals:1 [ 1.25; 2.0 ];
  let s = Table.render t in
  Alcotest.(check bool) "formats decimals" true
    (String.length s > 0
    &&
    let found = ref false in
    String.iteri
      (fun i _ ->
        if i + 3 <= String.length s && String.sub s i 3 = "1.2" then found := true)
      s;
    !found)

let test_table_empty_columns () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Table.create ~columns:[]))

(* --- Experiment --- *)

let test_replicate_deterministic () =
  let f rng = Rng.float rng in
  let a = Experiment.replicate ~seed:5 ~reps:10 f in
  let b = Experiment.replicate ~seed:5 ~reps:10 f in
  Alcotest.(check (list (float 1e-12))) "same seed same values" a b

let test_replicate_independent_reps () =
  let vals = Experiment.replicate ~seed:6 ~reps:20 (fun rng -> Rng.float rng) in
  let distinct = List.sort_uniq compare vals in
  Alcotest.(check int) "all reps distinct" 20 (List.length distinct)

let test_replicate_validation () =
  Alcotest.check_raises "reps" (Invalid_argument "Experiment.replicate: reps < 1")
    (fun () -> ignore (Experiment.replicate ~seed:1 ~reps:0 (fun _ -> ())))

let test_summarize () =
  let s = Experiment.summarize ~seed:7 ~reps:1000 (fun rng -> Rng.float rng) in
  Alcotest.(check int) "count" 1000 s.Summary.count;
  Alcotest.(check bool) "mean near 0.5" true (abs_float (s.Summary.mean -. 0.5) < 0.05)

let test_success_rate () =
  let r = Experiment.success_rate ~seed:8 ~reps:2000 (fun rng -> Rng.bernoulli rng 0.25) in
  Alcotest.(check bool) "near 0.25" true (abs_float (r -. 0.25) < 0.04);
  checkf "always true" 1. (Experiment.success_rate ~seed:9 ~reps:10 (fun _ -> true))

(* --- graceful interruption --- *)

let clear_interrupt_flag () =
  (* The flag deliberately survives [with_interrupt_signals]; entering
     an empty scope is the supported way to reset it between tests. *)
  Experiment.with_interrupt_signals (fun () -> ())

let test_interrupt_pre_set_empty_prefix () =
  Fun.protect ~finally:clear_interrupt_flag (fun () ->
      Experiment.with_interrupt_signals (fun () ->
          Alcotest.(check bool) "flag cleared on entry" false
            (Experiment.interrupted ());
          Experiment.request_interrupt ();
          Alcotest.(check bool) "flag set" true (Experiment.interrupted ());
          let r =
            Experiment.replicate ~seed:21 ~reps:40 (fun rng -> Rng.float rng)
          in
          Alcotest.(check int) "pre-interrupted run: empty prefix" 0
            (List.length r);
          let rp =
            Experiment.replicate_parallel ~domains:3 ~seed:21 ~reps:40
              (fun rng -> Rng.float rng)
          in
          Alcotest.(check int) "parallel too" 0 (List.length rp);
          (* the completed-subset divisor must stay safe on empty *)
          checkf "success_rate of nothing is 0, not nan" 0.
            (Experiment.success_rate ~seed:9 ~reps:10 (fun _ -> true)));
      Alcotest.(check bool) "flag survives scope exit" true
        (Experiment.interrupted ()))

let test_interrupt_self_signal_partial () =
  (* The signal path end-to-end, self-inflicted: repetition 10 sends
     SIGTERM to our own pid; the installed handler sets the flag and the
     replication must return the completed prefix — bit-identical to the
     uninterrupted run — instead of dying or running to completion. *)
  Fun.protect ~finally:clear_interrupt_flag (fun () ->
      let full =
        Experiment.replicate ~seed:22 ~reps:30 (fun rng -> Rng.float rng)
      in
      let count = ref 0 in
      let partial =
        Experiment.with_interrupt_signals (fun () ->
            Experiment.replicate ~seed:22 ~reps:30 (fun rng ->
                let v = Rng.float rng in
                incr count;
                if !count = 10 then Unix.kill (Unix.getpid ()) Sys.sigterm;
                (* touch the allocator so the pending handler runs *)
                ignore (Sys.opaque_identity (Bytes.create 64));
                v))
      in
      Alcotest.(check bool) "interruption observed" true
        (Experiment.interrupted ());
      Alcotest.(check bool) "partial, not the full run" true
        (List.length partial < 30);
      Alcotest.(check bool) "at least the signalling rep completed" true
        (List.length partial >= 10);
      List.iteri
        (fun i v ->
          checkf
            (Printf.sprintf "prefix rep %d bit-identical" i)
            (List.nth full i) v)
        partial)

let test_interrupt_parallel_partial_no_orphans () =
  (* Interrupt mid-flight across domains: the call must join every
     domain (a leak would hang this test), return a strict subset, and
     every completed repetition must match its uninterrupted
     counterpart because streams are pre-forked. *)
  Fun.protect ~finally:clear_interrupt_flag (fun () ->
      let full =
        Experiment.replicate ~seed:23 ~reps:40 (fun rng -> Rng.float rng)
      in
      let started = Atomic.make 0 in
      let partial =
        Experiment.with_interrupt_signals (fun () ->
            Experiment.replicate_parallel ~domains:3 ~seed:23 ~reps:40
              (fun rng ->
                if Atomic.fetch_and_add started 1 = 5 then
                  Experiment.request_interrupt ();
                Rng.float rng))
      in
      Alcotest.(check bool) "some repetitions completed" true (partial <> []);
      Alcotest.(check bool) "a strict subset" true (List.length partial < 40);
      List.iter
        (fun v ->
          Alcotest.(check bool) "value from the uninterrupted run" true
            (List.exists (fun w -> w = v) full))
        partial)

(* --- qcheck properties --- *)

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))

let prop_summary_bounds =
  QCheck.Test.make ~count:200 ~name:"mean and median lie within [min, max]"
    nonempty_floats
    (fun l ->
      let s = Summary.of_list l in
      s.Summary.min <= s.Summary.mean
      && s.Summary.mean <= s.Summary.max
      && s.Summary.min <= s.Summary.median
      && s.Summary.median <= s.Summary.max)

let prop_summary_shift =
  QCheck.Test.make ~count:200 ~name:"shifting data shifts the mean"
    QCheck.(pair nonempty_floats (float_bound_exclusive 100.))
    (fun (l, c) ->
      let s1 = Summary.of_list l in
      let s2 = Summary.of_list (List.map (fun x -> x +. c) l) in
      abs_float (s2.Summary.mean -. (s1.Summary.mean +. c)) < 1e-6)

let prop_histogram_conserves =
  QCheck.Test.make ~count:200 ~name:"histogram bins sum to the count"
    QCheck.(list (float_bound_exclusive 10.))
    (fun l ->
      let h = Histogram.create ~lo:0. ~hi:10. ~bins:7 in
      List.iter (Histogram.add h) l;
      let total = ref 0 in
      for i = 0 to 6 do
        total := !total + Histogram.bin_count h i
      done;
      !total = List.length l && Histogram.count h = List.length l)

let prop_regression_recovers_line =
  QCheck.Test.make ~count:100 ~name:"regression is exact on exact lines"
    QCheck.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (a, b) ->
      let points = List.init 5 (fun i ->
          let x = float_of_int i in
          (x, (a *. x) +. b))
      in
      let fit = Regression.linear points in
      abs_float (fit.Regression.slope -. a) < 1e-9
      && abs_float (fit.Regression.intercept -. b) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_summary_bounds;
      prop_summary_shift;
      prop_histogram_conserves;
      prop_regression_recovers_line;
    ]

let () =
  Alcotest.run "rumor_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "known values" `Quick test_summary_known;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "unsorted input" `Quick test_summary_unsorted_input;
          Alcotest.test_case "of_ints" `Quick test_summary_of_ints;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "ci shrinks" `Quick test_ci_shrinks;
          Alcotest.test_case "nan ordering" `Quick test_summary_nan_ordering;
          Alcotest.test_case "pp" `Quick test_summary_pp;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "clamping" `Quick test_histogram_clamping;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "rejects non-finite" `Quick
            test_histogram_rejects_non_finite;
          Alcotest.test_case "pp" `Quick test_histogram_pp;
        ] );
      ( "regression",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "linear noise" `Quick test_linear_noise;
          Alcotest.test_case "validation" `Quick test_linear_validation;
          Alcotest.test_case "loglog exponent" `Quick test_loglog_exponent;
          Alcotest.test_case "semilogx slope" `Quick test_semilogx_slope;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "float rows" `Quick test_table_float_rows;
          Alcotest.test_case "empty columns" `Quick test_table_empty_columns;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic" `Quick test_replicate_deterministic;
          Alcotest.test_case "independent reps" `Quick test_replicate_independent_reps;
          Alcotest.test_case "validation" `Quick test_replicate_validation;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "success rate" `Quick test_success_rate;
        ] );
      ( "interruption",
        [
          Alcotest.test_case "pre-set flag: empty prefix" `Quick
            test_interrupt_pre_set_empty_prefix;
          Alcotest.test_case "self-signal: partial prefix" `Quick
            test_interrupt_self_signal_partial;
          Alcotest.test_case "parallel: subset, no orphans" `Quick
            test_interrupt_parallel_partial_no_orphans;
        ] );
      ("properties", qcheck_cases);
    ]
