(* Tests for the fourth extension wave: the sender-side feedback hook,
   the Demers rumor-mongering variants, scenario files, and parallel
   experiment replication. *)

module Rng = Rumor_rng.Rng
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Feedback = Rumor_core.Feedback
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Scenario = Rumor_cli.Scenario
module Experiment = Rumor_stats.Experiment

(* --- the feedback hook itself --- *)

(* A push protocol that counts sender-side feedback signals in a shared
   cell so the test can observe them. *)
let counting_protocol ~cell ~horizon =
  {
    Protocol.name = "count-feedback";
    selector = Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide =
      (fun st ~round ->
        ignore round;
        ignore st;
        { Protocol.push = true; pull = false });
    receive = (fun _ ~round -> ignore round; true);
    feedback =
      (fun st ~round ->
        ignore round;
        incr cell;
        st);
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let test_feedback_hook_fires () =
  let cell = ref 0 in
  let rng = Rng.create 1 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph (Classic.complete 64))
      ~protocol:(counting_protocol ~cell ~horizon:30)
      ~sources:[ 0 ] ()
  in
  (* Every push transmission either informs someone new or produces one
     feedback signal. *)
  Alcotest.(check int) "tx = informs + feedbacks" res.Engine.push_tx
    ((res.Engine.informed - 1) + !cell);
  Alcotest.(check bool) "feedback happened" true (!cell > 0)

let test_feedback_not_fired_without_duplicates () =
  (* On a path pushed for one round from an endpoint, the single
     delivery reaches an uninformed node: no feedback. *)
  let cell = ref 0 in
  let rng = Rng.create 2 in
  let _ =
    Engine.run ~rng
      ~topology:(Topology.of_graph (Classic.path 3))
      ~protocol:(counting_protocol ~cell ~horizon:1)
      ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "no duplicates, no feedback" 0 !cell

(* --- Demers variants --- *)

let run_variant ~seed protocol =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n:1024 ~d:8 Regular.Pairing in
  Run.once ~rng ~graph:g ~protocol ~source:0 ()

let test_blind_counter_dies () =
  let res = run_variant ~seed:3 (Feedback.blind_counter ~k:4 ~horizon:500 ()) in
  (* Every node transmits for exactly k rounds after receipt: the rumor
     must die out long before the horizon. *)
  Alcotest.(check bool) "self-terminates" true (res.Engine.rounds < 100);
  Alcotest.(check bool) "high coverage" true
    (res.Engine.informed > (99 * res.Engine.population) / 100)

let test_feedback_counter_dies () =
  let res =
    run_variant ~seed:4 (Feedback.feedback_counter ~k:2 ~horizon:500 ())
  in
  Alcotest.(check bool) "self-terminates" true (res.Engine.rounds < 200);
  Alcotest.(check bool) "informs most nodes" true
    (res.Engine.informed > (9 * res.Engine.population) / 10)

let test_feedback_coin_dies () =
  let rng = Rng.create 5 in
  let res = run_variant ~seed:5 (Feedback.feedback_coin ~rng ~k:2 ~horizon:500 ()) in
  Alcotest.(check bool) "self-terminates" true (res.Engine.rounds < 200)

let test_blind_coin_dies () =
  let rng = Rng.create 6 in
  let res = run_variant ~seed:6 (Feedback.blind_coin ~rng ~k:2 ~horizon:500 ()) in
  Alcotest.(check bool) "self-terminates" true (res.Engine.rounds < 200)

let test_larger_k_lower_residue () =
  let residue seed k =
    let res = run_variant ~seed (Feedback.blind_counter ~k ~horizon:500 ()) in
    res.Engine.population - res.Engine.informed
  in
  let r1 = residue 7 1 and r8 = residue 7 8 in
  Alcotest.(check bool)
    (Printf.sprintf "k=8 (%d left) beats k=1 (%d left)" r8 r1)
    true (r8 <= r1);
  Alcotest.(check int) "k=8 leaves nobody" 0 r8

let test_feedback_validation () =
  Alcotest.check_raises "k" (Invalid_argument "Feedback: k < 1") (fun () ->
      ignore (Feedback.blind_counter ~k:0 ~horizon:10 ()));
  Alcotest.check_raises "horizon" (Invalid_argument "Feedback: horizon < 1")
    (fun () -> ignore (Feedback.feedback_counter ~k:2 ~horizon:0 ()))

(* --- Scenario --- *)

let test_scenario_defaults () =
  match Scenario.parse "" with
  | Ok s ->
      Alcotest.(check int) "default n" 16384 s.Scenario.n;
      Alcotest.(check string) "default protocol" "bef" s.Scenario.protocol
  | Error e -> Alcotest.failf "empty scenario should parse: %s" e

let test_scenario_parse_full () =
  let text =
    "# comment line\n\
     seed = 9\n\
     n = 2048   # trailing comment\n\
     d=6\n\
     topology = hypercube\n\
     protocol = push\n\
     alpha = 2.5\n\
     fanout = 2\n\
     loss = 0.25\n\
     call_failure = 0.1\n\
     reps = 7\n"
  in
  match Scenario.parse text with
  | Error e -> Alcotest.failf "should parse: %s" e
  | Ok s ->
      Alcotest.(check int) "seed" 9 s.Scenario.seed;
      Alcotest.(check int) "n" 2048 s.Scenario.n;
      Alcotest.(check int) "d" 6 s.Scenario.d;
      Alcotest.(check string) "topology" "hypercube" s.Scenario.topology;
      Alcotest.(check string) "protocol" "push" s.Scenario.protocol;
      Alcotest.(check (float 1e-9)) "alpha" 2.5 s.Scenario.alpha;
      Alcotest.(check int) "fanout" 2 s.Scenario.fanout;
      Alcotest.(check (float 1e-9)) "loss" 0.25 s.Scenario.loss;
      Alcotest.(check (float 1e-9)) "call failure" 0.1 s.Scenario.call_failure;
      Alcotest.(check int) "reps" 7 s.Scenario.reps

let test_scenario_parse_fault_keys () =
  let text =
    "burst_loss = 0.1\n\
     burst_len = 6\n\
     crash_rate = 0.01\n\
     recover_rate = 0.2\n\
     crash_adversary = frontier\n\
     crash_count = 32\n\
     crash_round = 5\n\
     n_error = 4\n"
  in
  match Scenario.parse text with
  | Error e -> Alcotest.failf "should parse: %s" e
  | Ok s ->
      Alcotest.(check (float 1e-9)) "burst_loss" 0.1 s.Scenario.burst_loss;
      Alcotest.(check (float 1e-9)) "burst_len" 6. s.Scenario.burst_len;
      Alcotest.(check (float 1e-9)) "crash_rate" 0.01 s.Scenario.crash_rate;
      Alcotest.(check (float 1e-9)) "recover_rate" 0.2 s.Scenario.recover_rate;
      Alcotest.(check string) "adversary" "frontier" s.Scenario.crash_adversary;
      Alcotest.(check int) "crash_count" 32 s.Scenario.crash_count;
      Alcotest.(check int) "crash_round" 5 s.Scenario.crash_round;
      Alcotest.(check (float 1e-9)) "n_error" 4. s.Scenario.n_error;
      (* The assembled plan carries every mode. *)
      let fault = Scenario.fault_plan s in
      Alcotest.(check bool) "burst built" true
        (fault.Rumor_sim.Fault.burst <> None);
      Alcotest.(check bool) "strike built" true
        (fault.Rumor_sim.Fault.strike <> None)

let expect_error text fragment =
  match Scenario.parse text with
  | Ok _ -> Alcotest.failf "expected an error mentioning %S" fragment
  | Error msg ->
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg fragment)
        true (contains fragment msg)

let test_scenario_parse_errors () =
  expect_error "nonsense" "key = value";
  expect_error "n = few" "integer";
  expect_error "n = 2" "n must be";
  expect_error "alpha = 0" "alpha must be";
  expect_error "loss = 3" "loss must be";
  expect_error "topology = donut" "unknown topology";
  expect_error "protocol = telepathy" "unknown protocol";
  expect_error "color = blue" "unknown key";
  expect_error "seed = 1\nreps = 0" "line 2";
  (* Duplicate keys are rejected, naming both occurrences. *)
  expect_error "n = 512\nd = 4\nn = 1024" "duplicate key 'n'";
  expect_error "n = 512\nd = 4\nn = 1024" "line 1";
  (* New fault keys validate their ranges... *)
  expect_error "burst_loss = 1.5" "burst_loss must be";
  expect_error "burst_len = 0.5" "burst_len must be";
  expect_error "crash_adversary = gremlins" "unknown crash_adversary";
  expect_error "crash_round = 0" "crash_round must be";
  expect_error "n_error = 0" "n_error must be";
  (* ...and their joint realisability. *)
  expect_error "burst_loss = 0.9\nburst_len = 2" "unrealisable"

let test_scenario_run () =
  let scenario =
    { Scenario.default with Scenario.n = 512; reps = 2; seed = 11 }
  in
  let report = Scenario.run scenario in
  Alcotest.(check (float 1e-9)) "succeeds" 1. report.Scenario.success_rate;
  Alcotest.(check int) "reps recorded" 2 report.Scenario.tx_per_node.Rumor_stats.Summary.count;
  let rendered = Format.asprintf "%a" Scenario.pp_report report in
  Alcotest.(check bool) "report renders" true (String.length rendered > 0)

let test_scenario_parse_file_missing () =
  match Scenario.parse_file "/nonexistent/scenario.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should error"

let test_scenario_factories_reject_unknown () =
  let rng = Rng.create 12 in
  (match Scenario.make_graph ~rng ~topology:"moebius" ~n:16 ~d:4 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown topology accepted");
  match Scenario.make_protocol ~protocol:"smoke-signals" ~n:16 ~d:4 ~alpha:1. ~fanout:4 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown protocol accepted"

(* --- parallel replication --- *)

let test_parallel_matches_sequential () =
  let f rng =
    (* A measurement with enough randomness to expose stream mixups. *)
    let g = Regular.sample ~rng ~n:64 ~d:4 Regular.Pairing in
    (Rumor_graph.Graph.m g, Rng.int rng 1_000_000)
  in
  let seq = Experiment.replicate ~seed:13 ~reps:9 f in
  let par = Experiment.replicate_parallel ~domains:4 ~seed:13 ~reps:9 f in
  Alcotest.(check bool) "identical results" true (seq = par)

let test_parallel_single_domain () =
  let f rng = Rng.float rng in
  let seq = Experiment.replicate ~seed:14 ~reps:5 f in
  let par = Experiment.replicate_parallel ~domains:1 ~seed:14 ~reps:5 f in
  Alcotest.(check (list (float 1e-12))) "domains=1 delegates" seq par

let test_parallel_more_domains_than_reps () =
  let par =
    Experiment.replicate_parallel ~domains:16 ~seed:15 ~reps:3 (fun rng ->
        Rng.int rng 100)
  in
  Alcotest.(check int) "three results" 3 (List.length par)

let test_parallel_validation () =
  Alcotest.check_raises "reps" (Invalid_argument "Experiment.replicate: reps < 1")
    (fun () ->
      ignore (Experiment.replicate_parallel ~seed:1 ~reps:0 (fun _ -> ())))

let test_parallel_broadcast_workload () =
  (* A realistic workload across domains: full broadcasts. *)
  let f rng =
    let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
    let p =
      Rumor_core.Algorithm.make (Rumor_core.Params.make ~n_estimate:512 ~d:8 ())
    in
    Engine.transmissions (Run.once ~rng ~graph:g ~protocol:p ~source:0 ())
  in
  let seq = Experiment.replicate ~seed:16 ~reps:6 f in
  let par = Experiment.replicate_parallel ~domains:3 ~seed:16 ~reps:6 f in
  Alcotest.(check (list int)) "broadcast results identical" seq par

let () =
  Alcotest.run "extensions-4"
    [
      ( "feedback-hook",
        [
          Alcotest.test_case "fires on duplicates" `Quick test_feedback_hook_fires;
          Alcotest.test_case "silent without duplicates" `Quick
            test_feedback_not_fired_without_duplicates;
        ] );
      ( "demers",
        [
          Alcotest.test_case "blind counter dies" `Quick test_blind_counter_dies;
          Alcotest.test_case "feedback counter dies" `Quick test_feedback_counter_dies;
          Alcotest.test_case "feedback coin dies" `Quick test_feedback_coin_dies;
          Alcotest.test_case "blind coin dies" `Quick test_blind_coin_dies;
          Alcotest.test_case "larger k lower residue" `Quick
            test_larger_k_lower_residue;
          Alcotest.test_case "validation" `Quick test_feedback_validation;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "defaults" `Quick test_scenario_defaults;
          Alcotest.test_case "parse full" `Quick test_scenario_parse_full;
          Alcotest.test_case "parse fault keys" `Quick
            test_scenario_parse_fault_keys;
          Alcotest.test_case "parse errors" `Quick test_scenario_parse_errors;
          Alcotest.test_case "run" `Quick test_scenario_run;
          Alcotest.test_case "missing file" `Quick test_scenario_parse_file_missing;
          Alcotest.test_case "unknown names" `Quick
            test_scenario_factories_reject_unknown;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "domains > reps" `Quick
            test_parallel_more_domains_than_reps;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          Alcotest.test_case "broadcast workload" `Slow
            test_parallel_broadcast_workload;
        ] );
    ]
