(* Tests for the rumor_core library: parameters, phase schedules, the
   paper's Algorithms 1 & 2, and the baseline protocols. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Engine = Rumor_sim.Engine
module Params = Rumor_core.Params
module Phase = Rumor_core.Phase
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run

(* --- Params --- *)

let test_params_defaults () =
  let p = Params.make ~n_estimate:1024 ~d:8 () in
  Alcotest.(check int) "fanout default" 4 p.Params.fanout;
  Alcotest.(check (float 1e-9)) "alpha default" 1.0 p.Params.alpha

let test_params_validation () =
  Alcotest.check_raises "tiny n" (Invalid_argument "Params.make: n_estimate < 4")
    (fun () -> ignore (Params.make ~n_estimate:3 ~d:4 ()));
  Alcotest.check_raises "bad d" (Invalid_argument "Params.make: d < 1")
    (fun () -> ignore (Params.make ~n_estimate:16 ~d:0 ()));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Params.make: alpha <= 0")
    (fun () -> ignore (Params.make ~alpha:0. ~n_estimate:16 ~d:4 ()));
  Alcotest.check_raises "bad fanout" (Invalid_argument "Params.make: fanout < 1")
    (fun () -> ignore (Params.make ~fanout:0 ~n_estimate:16 ~d:4 ()))

let test_log_helpers () =
  Alcotest.(check (float 1e-9)) "log2 8" 3. (Params.log2 8.);
  Alcotest.(check int) "ceil_log2 1" 0 (Params.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Params.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Params.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 1024" 10 (Params.ceil_log2 1024);
  Alcotest.(check int) "ceil_log2 1025" 11 (Params.ceil_log2 1025);
  Alcotest.check_raises "ceil_log2 0" (Invalid_argument "Params.ceil_log2: n < 1")
    (fun () -> ignore (Params.ceil_log2 0))

let test_loglog_floor () =
  (* For n = 2^16, log2 log2 n = 4. *)
  let p = Params.make ~n_estimate:65536 ~d:8 () in
  Alcotest.(check (float 1e-9)) "loglog 2^16" 4. (Params.loglog p);
  (* Floored at 1 for tiny n. *)
  let q = Params.make ~n_estimate:4 ~d:2 () in
  Alcotest.(check (float 1e-9)) "floor" 1. (Params.loglog q)

(* --- Phase --- *)

let test_schedule_small () =
  let p = Params.make ~alpha:1.0 ~n_estimate:65536 ~d:8 () in
  let s = Phase.schedule p Phase.Small in
  Alcotest.(check int) "p1 = ceil(log n)" 16 s.Phase.p1_end;
  Alcotest.(check int) "p2 = p1 + ceil(log log n)" 20 s.Phase.p2_end;
  Alcotest.(check int) "p3 is one round" 21 s.Phase.p3_end;
  (* Phase 4 is exactly ceil(alpha log n) = 16 rounds after the pull
     round: 21 + 16 = 37 (not the old 2*ceil(a lg) + ceil(a llg) = 36,
     which undercounted by the ceiling interaction). *)
  Alcotest.(check int) "last = p3 + ceil(log n)" 37 s.Phase.last

let test_schedule_large () =
  let p = Params.make ~alpha:1.0 ~n_estimate:65536 ~d:32 () in
  let s = Phase.schedule p Phase.Large in
  Alcotest.(check int) "p1" 16 s.Phase.p1_end;
  Alcotest.(check int) "p2" 20 s.Phase.p2_end;
  Alcotest.(check int) "p3 = log n + 2 log log n" 24 s.Phase.p3_end;
  Alcotest.(check int) "no phase 4" s.Phase.p3_end s.Phase.last

let test_schedule_monotone () =
  List.iter
    (fun n_estimate ->
      List.iter
        (fun variant ->
          let p = Params.make ~n_estimate ~d:6 () in
          let s = Phase.schedule p variant in
          Alcotest.(check bool) "boundaries ordered" true
            (0 < s.Phase.p1_end && s.Phase.p1_end < s.Phase.p2_end
            && s.Phase.p2_end < s.Phase.p3_end
            && s.Phase.p3_end <= s.Phase.last))
        [ Phase.Small; Phase.Large ])
    [ 4; 16; 100; 1000; 65536; 1_000_000 ]

let test_phase_of () =
  let p = Params.make ~alpha:1.0 ~n_estimate:65536 ~d:8 () in
  let s = Phase.schedule p Phase.Small in
  let check round expected =
    Alcotest.(check bool)
      (Printf.sprintf "round %d" round)
      true
      (Phase.phase_of s ~round = expected)
  in
  check 1 Phase.Phase1;
  check 16 Phase.Phase1;
  check 17 Phase.Phase2;
  check 20 Phase.Phase2;
  check 21 Phase.Phase3;
  check 22 Phase.Phase4;
  check 37 Phase.Phase4;
  check 38 Phase.Finished

let test_phase_of_large () =
  let p = Params.make ~alpha:1.0 ~n_estimate:65536 ~d:32 () in
  let s = Phase.schedule p Phase.Large in
  Alcotest.(check bool) "pull phase" true (Phase.phase_of s ~round:22 = Phase.Phase3);
  Alcotest.(check bool) "finished" true (Phase.phase_of s ~round:25 = Phase.Finished)

let test_auto_variant () =
  let small = Params.make ~n_estimate:65536 ~d:8 () in
  Alcotest.(check bool) "d=8 small" true (Phase.auto_variant small = Phase.Small);
  let large = Params.make ~n_estimate:65536 ~d:16 () in
  Alcotest.(check bool) "d=16 large" true (Phase.auto_variant large = Phase.Large)

let test_variant_to_string () =
  Alcotest.(check string) "small" "small-degree" (Phase.variant_to_string Phase.Small);
  Alcotest.(check string) "large" "large-degree" (Phase.variant_to_string Phase.Large)

(* --- Algorithm state machine (unit-level) --- *)

let small_schedule () =
  Algorithm.schedule_of (Params.make ~alpha:1.0 ~n_estimate:65536 ~d:8 ())
    (Some Phase.Small)

let small_protocol () =
  Algorithm.make ~variant:Phase.Small
    (Params.make ~alpha:1.0 ~n_estimate:65536 ~d:8 ())

let test_algorithm_phase1_pushes_once () =
  let p = small_protocol () in
  let st = Algorithm.Informed { received = 5 } in
  let d6 = p.Protocol.decide st ~round:6 in
  let d7 = p.Protocol.decide st ~round:7 in
  Alcotest.(check bool) "pushes the round after receipt" true d6.Protocol.push;
  Alcotest.(check bool) "silent afterwards in phase 1" false d7.Protocol.push;
  Alcotest.(check bool) "no pull in phase 1" false d6.Protocol.pull

let test_algorithm_source_pushes_round1 () =
  let p = small_protocol () in
  let st = p.Protocol.init ~informed:true in
  let d = p.Protocol.decide st ~round:1 in
  Alcotest.(check bool) "source pushes in round 1" true d.Protocol.push

let test_algorithm_phase2_all_push () =
  let p = small_protocol () in
  (* Any informed node pushes in phase 2, regardless of receipt round. *)
  List.iter
    (fun received ->
      let st = Algorithm.Informed { received } in
      let d = p.Protocol.decide st ~round:18 in
      Alcotest.(check bool) "pushes in phase 2" true d.Protocol.push)
    [ 0; 3; 17 ]

let test_algorithm_phase3_pulls () =
  let p = small_protocol () in
  let st = Algorithm.Informed { received = 2 } in
  let d = p.Protocol.decide st ~round:21 in
  Alcotest.(check bool) "pull round" true d.Protocol.pull;
  Alcotest.(check bool) "no push" false d.Protocol.push

let test_algorithm_phase4_only_active () =
  let p = small_protocol () in
  let s = small_schedule () in
  let veteran = Algorithm.Informed { received = 2 } in
  let active = Algorithm.Informed { received = s.Phase.p3_end } in
  let dv = p.Protocol.decide veteran ~round:25 in
  let da = p.Protocol.decide active ~round:25 in
  Alcotest.(check bool) "veteran silent" false (dv.Protocol.push || dv.Protocol.pull);
  Alcotest.(check bool) "active pushes" true da.Protocol.push

let test_algorithm_uninformed_silent () =
  let p = small_protocol () in
  for round = 1 to 36 do
    let d = p.Protocol.decide Algorithm.Uninformed ~round in
    Alcotest.(check bool) "uninformed silent" false (d.Protocol.push || d.Protocol.pull)
  done

let test_algorithm_receive_sets_round () =
  let p = small_protocol () in
  match p.Protocol.receive Algorithm.Uninformed ~round:9 with
  | Algorithm.Informed { received } -> Alcotest.(check int) "receipt round" 9 received
  | Algorithm.Uninformed -> Alcotest.fail "receive did not inform"

let test_algorithm_receive_idempotent () =
  let p = small_protocol () in
  let st = Algorithm.Informed { received = 3 } in
  match p.Protocol.receive st ~round:9 with
  | Algorithm.Informed { received } ->
      Alcotest.(check int) "first receipt wins" 3 received
  | Algorithm.Uninformed -> Alcotest.fail "lost state"

let test_algorithm_quiescent () =
  let p = small_protocol () in
  let s = small_schedule () in
  let veteran = Algorithm.Informed { received = 2 } in
  let active = Algorithm.Informed { received = s.Phase.p3_end } in
  Alcotest.(check bool) "veteran quiet in phase 4" true
    (p.Protocol.quiescent veteran ~round:(s.Phase.p3_end + 1));
  Alcotest.(check bool) "active not quiet in phase 4" false
    (p.Protocol.quiescent active ~round:(s.Phase.p3_end + 1));
  Alcotest.(check bool) "all quiet after the end" true
    (p.Protocol.quiescent active ~round:(s.Phase.last + 1));
  Alcotest.(check bool) "not quiet in phase 2" false
    (p.Protocol.quiescent veteran ~round:18)

let test_algorithm_horizon () =
  let p = small_protocol () in
  let s = small_schedule () in
  Alcotest.(check int) "horizon is schedule end" s.Phase.last p.Protocol.horizon

let test_algorithm_default_selector () =
  let p = Algorithm.make (Params.make ~n_estimate:1024 ~d:8 ()) in
  Alcotest.(check int) "fanout 4" 4 (Selector.fanout p.Protocol.selector)

(* --- Algorithm end-to-end --- *)

let broadcast_once ~seed ~n ~d ?(alpha = 1.0) ?variant () =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let params = Params.make ~alpha ~n_estimate:n ~d () in
  let protocol = Algorithm.make ?variant params in
  Run.once ~rng ~graph:g ~protocol ~source:(Run.random_source rng g) ()

let test_algorithm1_informs_all () =
  for seed = 1 to 10 do
    let res = broadcast_once ~seed ~n:1024 ~d:6 () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d complete" seed)
      true (Engine.success res)
  done

let test_algorithm2_informs_all () =
  for seed = 1 to 5 do
    let res = broadcast_once ~seed ~n:1024 ~d:20 ~variant:Phase.Large () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d complete" seed)
      true (Engine.success res)
  done

let test_algorithm_message_bound () =
  (* O(n log log n): with alpha=1 and fanout 4 the constant is below
     4 * (1 + alpha + alpha*loglog n) + pull overhead; assert a generous
     explicit cap and that it beats a trivial n*log n schedule cost. *)
  let n = 4096 in
  let res = broadcast_once ~seed:42 ~n ~d:8 () in
  let per_node = float_of_int (Engine.transmissions res) /. float_of_int n in
  let loglog = Params.log2 (Params.log2 (float_of_int n)) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f per node <= 8(1 + loglog)" per_node)
    true
    (per_node <= 8. *. (1. +. loglog));
  Alcotest.(check bool) "completes" true (Engine.success res)

let test_algorithm_rounds_bound () =
  let n = 4096 in
  let res = broadcast_once ~seed:43 ~n ~d:8 () in
  let s =
    Algorithm.schedule_of (Params.make ~alpha:1.0 ~n_estimate:n ~d:8 ()) None
  in
  Alcotest.(check bool) "rounds within schedule" true
    (res.Engine.rounds <= s.Phase.last)

let test_algorithm_wrong_estimate_still_works () =
  (* The paper only needs n to within a constant factor: run with the
     estimate 4x too small and 4x too large. *)
  let rng = Rng.create 44 in
  let n = 2048 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  List.iter
    (fun est ->
      let params = Params.make ~alpha:1.5 ~n_estimate:est ~d:8 () in
      let protocol = Algorithm.make params in
      let res = Run.once ~rng ~graph:g ~protocol ~source:0 () in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %d works" est)
        true (Engine.success res))
    [ n / 4; n * 4 ]

let test_sequentialised_variant () =
  let rng = Rng.create 45 in
  let n = 1024 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let protocol = Algorithm.sequentialised (Params.make ~n_estimate:n ~d:8 ()) in
  Alcotest.(check int) "fanout 1" 1 (Selector.fanout protocol.Protocol.selector);
  let res = Run.once ~rng ~graph:g ~protocol ~source:0 () in
  Alcotest.(check bool) "memory variant completes" true (Engine.success res)

let test_algorithm_with_failures () =
  let rng = Rng.create 46 in
  let n = 2048 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let params = Params.make ~alpha:2.0 ~n_estimate:n ~d:8 () in
  let fault = Rumor_sim.Fault.make ~link_loss:0.1 () in
  let res =
    Run.once ~fault ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 ()
  in
  Alcotest.(check bool) "tolerates 10% loss" true (Engine.success res)

(* --- Baselines --- *)

let test_push_completes () =
  let rng = Rng.create 50 in
  let g = Regular.sample_connected ~rng ~n:512 ~d:6 Regular.Pairing in
  let res =
    Run.once ~stop_when_complete:true ~rng ~graph:g
      ~protocol:(Baselines.push ~horizon:300 ())
      ~source:0 ()
  in
  Alcotest.(check bool) "push completes" true (Engine.success res);
  Alcotest.(check int) "push only" 0 res.Engine.pull_tx

let test_pull_completes_on_complete_graph () =
  let rng = Rng.create 51 in
  let res =
    Run.once ~stop_when_complete:true ~rng ~graph:(Classic.complete 128)
      ~protocol:(Baselines.pull ~horizon:300 ())
      ~source:0 ()
  in
  Alcotest.(check bool) "pull completes" true (Engine.success res);
  Alcotest.(check int) "pull only" 0 res.Engine.push_tx

let test_push_pull_faster_than_push () =
  let rng = Rng.create 52 in
  let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
  let mean_rounds protocol =
    let total = ref 0 in
    for seed = 1 to 5 do
      let rng = Rng.create (100 + seed) in
      let res =
        Run.once ~stop_when_complete:true ~rng ~graph:g ~protocol:(protocol ())
          ~source:0 ()
      in
      total := !total + res.Engine.rounds
    done;
    !total
  in
  let push = mean_rounds (fun () -> Baselines.push ~horizon:500 ()) in
  let both = mean_rounds (fun () -> Baselines.push_pull ~horizon:500 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "push-pull (%d) <= push (%d)" both push)
    true (both <= push)

let test_push_pull_age_phases () =
  let p = Baselines.push_pull_age ~push_rounds:5 ~total_rounds:10 () in
  let st = Algorithm.Informed { received = 0 } in
  let early = p.Protocol.decide st ~round:3 in
  let late = p.Protocol.decide st ~round:8 in
  let done_ = p.Protocol.decide st ~round:11 in
  Alcotest.(check bool) "early pushes and pulls" true
    (early.Protocol.push && early.Protocol.pull);
  Alcotest.(check bool) "late pulls only" true
    ((not late.Protocol.push) && late.Protocol.pull);
  Alcotest.(check bool) "done silent" false (done_.Protocol.push || done_.Protocol.pull);
  Alcotest.(check bool) "quiescent after end" true
    (p.Protocol.quiescent st ~round:11)

let test_push_pull_age_validation () =
  Alcotest.check_raises "bad rounds"
    (Invalid_argument "Baselines.push_pull_age: total_rounds < push_rounds")
    (fun () -> ignore (Baselines.push_pull_age ~push_rounds:5 ~total_rounds:3 ()))

let test_quasirandom_completes () =
  let rng = Rng.create 53 in
  let g = Classic.hypercube 8 in
  let res =
    Run.once ~stop_when_complete:true ~rng ~graph:g
      ~protocol:(Baselines.quasirandom ~fanout:1 ~horizon:300)
      ~source:0 ()
  in
  Alcotest.(check bool) "quasirandom completes on hypercube" true
    (Engine.success res)

let test_baseline_names () =
  Alcotest.(check string) "push name" "push-f1"
    (Baselines.push ~horizon:5 ()).Protocol.name;
  Alcotest.(check string) "age name" "push-pull-age-f1"
    (Baselines.push_pull_age ~push_rounds:1 ~total_rounds:2 ()).Protocol.name

(* --- Run helpers --- *)

let test_run_repeat_reproducible () =
  let g = Classic.complete 64 in
  let go () =
    let rng = Rng.create 77 in
    Run.repeat ~rng ~graph:g
      ~protocol:(fun () -> Baselines.push ~horizon:50 ())
      ~times:3 ()
    |> List.map Engine.transmissions
  in
  Alcotest.(check (list int)) "identical reruns" (go ()) (go ())

let test_run_repeat_count () =
  let g = Classic.complete 16 in
  let rng = Rng.create 78 in
  let rs =
    Run.repeat ~rng ~graph:g
      ~protocol:(fun () -> Baselines.push ~horizon:30 ())
      ~times:5 ()
  in
  Alcotest.(check int) "five results" 5 (List.length rs)

let test_random_source_range () =
  let g = Classic.complete 10 in
  let rng = Rng.create 79 in
  for _ = 1 to 100 do
    let s = Run.random_source rng g in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 10)
  done

(* --- qcheck properties --- *)

let prop_schedule_scales_with_alpha =
  QCheck.Test.make ~count:50 ~name:"larger alpha gives longer phases"
    QCheck.(pair (int_range 16 100000) (int_range 1 4))
    (fun (n_estimate, mult) ->
      let base = Params.make ~alpha:1.0 ~n_estimate ~d:6 () in
      let big = Params.make ~alpha:(float_of_int (1 + mult)) ~n_estimate ~d:6 () in
      let s1 = Phase.schedule base Phase.Small in
      let s2 = Phase.schedule big Phase.Small in
      s2.Phase.p1_end >= s1.Phase.p1_end && s2.Phase.last >= s1.Phase.last)

let prop_phase_of_total =
  QCheck.Test.make ~count:100 ~name:"phase_of is total and ordered"
    QCheck.(pair (int_range 4 1000000) bool)
    (fun (n_estimate, small) ->
      let p = Params.make ~n_estimate ~d:6 () in
      let v = if small then Phase.Small else Phase.Large in
      let s = Phase.schedule p v in
      let order ph =
        match ph with
        | Phase.Phase1 -> 1
        | Phase.Phase2 -> 2
        | Phase.Phase3 -> 3
        | Phase.Phase4 -> 4
        | Phase.Finished -> 5
      in
      let ok = ref true in
      for round = 1 to s.Phase.last + 2 do
        let here = order (Phase.phase_of s ~round) in
        let next = order (Phase.phase_of s ~round:(round + 1)) in
        if next < here then ok := false
      done;
      !ok)

let prop_phase_lengths_match_paper =
  (* The paper's formulas, checked length by length: phase 1 is
     ceil(a lg n) rounds, phase 2 is ceil(a(lg+llg)) - ceil(a lg),
     phase 3 is one round (Small), phase 4 is exactly ceil(a lg n)
     further rounds; Large runs ~2a llg pull rounds after phase 2,
     up to ceiling slack. *)
  QCheck.Test.make ~count:200 ~name:"phase lengths match the paper's formulas"
    QCheck.(pair (int_range 4 10_000_000) (int_range 1 16))
    (fun (n_estimate, alpha_quarters) ->
      let alpha = float_of_int alpha_quarters /. 4. in
      let p = Params.make ~alpha ~n_estimate ~d:6 () in
      let lg = Params.log2 (float_of_int n_estimate) in
      let llg = Params.loglog p in
      let ceil_i x = int_of_float (ceil x) in
      let s = Phase.schedule p Phase.Small in
      let small_ok =
        s.Phase.p1_end = ceil_i (alpha *. lg)
        && s.Phase.p2_end = ceil_i (alpha *. (lg +. llg))
        && s.Phase.p3_end = s.Phase.p2_end + 1
        && s.Phase.last - s.Phase.p3_end = ceil_i (alpha *. lg)
      in
      let l = Phase.schedule p Phase.Large in
      let pull_len = l.Phase.last - l.Phase.p2_end in
      let large_ok =
        l.Phase.last = l.Phase.p3_end
        && abs_float (float_of_int pull_len -. (alpha *. llg)) <= 2.
      in
      small_ok && large_ok)

let prop_algorithm_decide_never_pushes_and_pulls =
  QCheck.Test.make ~count:100 ~name:"algorithm never pushes and pulls together"
    QCheck.(triple (int_range 4 100000) (int_range 0 60) (int_range 1 60))
    (fun (n_estimate, received, round) ->
      let p = Algorithm.make (Params.make ~n_estimate ~d:6 ()) in
      let d = p.Protocol.decide (Algorithm.Informed { received }) ~round in
      not (d.Protocol.push && d.Protocol.pull))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_schedule_scales_with_alpha;
      prop_phase_of_total;
      prop_phase_lengths_match_paper;
      prop_algorithm_decide_never_pushes_and_pulls;
    ]

let () =
  Alcotest.run "rumor_core"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "log helpers" `Quick test_log_helpers;
          Alcotest.test_case "loglog floor" `Quick test_loglog_floor;
        ] );
      ( "phase",
        [
          Alcotest.test_case "schedule small" `Quick test_schedule_small;
          Alcotest.test_case "schedule large" `Quick test_schedule_large;
          Alcotest.test_case "schedule monotone" `Quick test_schedule_monotone;
          Alcotest.test_case "phase_of" `Quick test_phase_of;
          Alcotest.test_case "phase_of large" `Quick test_phase_of_large;
          Alcotest.test_case "auto variant" `Quick test_auto_variant;
          Alcotest.test_case "variant strings" `Quick test_variant_to_string;
        ] );
      ( "algorithm-unit",
        [
          Alcotest.test_case "phase1 pushes once" `Quick
            test_algorithm_phase1_pushes_once;
          Alcotest.test_case "source pushes round 1" `Quick
            test_algorithm_source_pushes_round1;
          Alcotest.test_case "phase2 all push" `Quick test_algorithm_phase2_all_push;
          Alcotest.test_case "phase3 pulls" `Quick test_algorithm_phase3_pulls;
          Alcotest.test_case "phase4 only active" `Quick
            test_algorithm_phase4_only_active;
          Alcotest.test_case "uninformed silent" `Quick test_algorithm_uninformed_silent;
          Alcotest.test_case "receive sets round" `Quick
            test_algorithm_receive_sets_round;
          Alcotest.test_case "receive idempotent" `Quick
            test_algorithm_receive_idempotent;
          Alcotest.test_case "quiescent" `Quick test_algorithm_quiescent;
          Alcotest.test_case "horizon" `Quick test_algorithm_horizon;
          Alcotest.test_case "default selector" `Quick test_algorithm_default_selector;
        ] );
      ( "algorithm-e2e",
        [
          Alcotest.test_case "alg1 informs all" `Slow test_algorithm1_informs_all;
          Alcotest.test_case "alg2 informs all" `Slow test_algorithm2_informs_all;
          Alcotest.test_case "message bound" `Slow test_algorithm_message_bound;
          Alcotest.test_case "rounds bound" `Slow test_algorithm_rounds_bound;
          Alcotest.test_case "wrong estimate" `Slow
            test_algorithm_wrong_estimate_still_works;
          Alcotest.test_case "sequentialised" `Slow test_sequentialised_variant;
          Alcotest.test_case "with failures" `Slow test_algorithm_with_failures;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "push completes" `Quick test_push_completes;
          Alcotest.test_case "pull completes" `Quick
            test_pull_completes_on_complete_graph;
          Alcotest.test_case "push-pull faster" `Slow test_push_pull_faster_than_push;
          Alcotest.test_case "age phases" `Quick test_push_pull_age_phases;
          Alcotest.test_case "age validation" `Quick test_push_pull_age_validation;
          Alcotest.test_case "quasirandom" `Quick test_quasirandom_completes;
          Alcotest.test_case "names" `Quick test_baseline_names;
        ] );
      ( "run",
        [
          Alcotest.test_case "repeat reproducible" `Quick test_run_repeat_reproducible;
          Alcotest.test_case "repeat count" `Quick test_run_repeat_count;
          Alcotest.test_case "random source" `Quick test_random_source_range;
        ] );
      ("properties", qcheck_cases);
    ]
