(* Hot-path regression pins and parallel-replication equivalence.

   The engine's allocation-free rewrite (incremental census, bitsets,
   hoisted decision closures) must not change a single trajectory: every
   result below was recorded from the straightforward
   full-census/bool-array implementation and is pinned bit-for-bit.
   [Experiment.replicate_parallel] must likewise agree element-for-element
   with sequential [replicate] for every domain count. *)

module Rng = Rumor_rng.Rng
module Bitset = Rumor_sim.Bitset
module Regular = Rumor_gen.Regular
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Run = Rumor_core.Run
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Fault = Rumor_sim.Fault
module Multi = Rumor_sim.Multi
module Async = Rumor_sim.Async
module Repair = Rumor_core.Repair
module Experiment = Rumor_stats.Experiment

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 77 in
  Alcotest.(check int) "length" 77 (Bitset.length b);
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 8;
  Bitset.set b 76;
  Alcotest.(check bool) "get set bit" true (Bitset.get b 8);
  Alcotest.(check bool) "get clear bit" false (Bitset.get b 9);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.clear b 7;
  Alcotest.(check bool) "cleared" false (Bitset.get b 7);
  Bitset.assign b 7 true;
  Bitset.assign b 0 false;
  Alcotest.(check bool) "assign true" true (Bitset.get b 7);
  Alcotest.(check bool) "assign false" false (Bitset.get b 0);
  let arr = Bitset.to_bool_array b in
  Alcotest.(check int) "array length" 77 (Array.length arr);
  Alcotest.(check bool) "array contents" true (arr.(7) && arr.(8) && arr.(76));
  Bitset.reset b;
  Alcotest.(check int) "reset" 0 (Bitset.cardinal b)

(* Model check against a plain bool array under a random op sequence. *)
let test_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with bool array"
    ~count:200
    QCheck.(pair (int_range 1 200) (list (pair (int_range 0 1000) bool)))
    (fun (len, ops) ->
      let b = Bitset.create len in
      let model = Array.make len false in
      List.iter
        (fun (i, v) ->
          let i = i mod len in
          Bitset.assign b i v;
          model.(i) <- v)
        ops;
      Bitset.to_bool_array b = model
      && Bitset.cardinal b
         = Array.fold_left (fun a x -> if x then a + 1 else a) 0 model)

(* --- pinned engine trajectories --- *)

let result_line (r : Engine.result) =
  Printf.sprintf "rounds=%d comp=%s informed=%d pop=%d push=%d pull=%d chan=%d"
    r.Engine.rounds
    (match r.Engine.completion_round with
    | Some c -> string_of_int c
    | None -> "None")
    r.Engine.informed r.Engine.population r.Engine.push_tx r.Engine.pull_tx
    r.Engine.channels

let check_line name expected r =
  Alcotest.(check string) name expected (result_line r)

let test_pinned_bef () =
  let rng = Rng.create 4242 in
  let g = Regular.sample_connected ~rng ~n:4096 ~d:8 Regular.Pairing in
  let p = Algorithm.make (Params.make ~n_estimate:4096 ~d:8 ()) in
  check_line "bef4096"
    "rounds=17 comp=13 informed=4096 pop=4096 push=81736 pull=16384 chan=278528"
    (Run.once ~rng ~graph:g ~protocol:p ~source:0 ())

let test_pinned_fault () =
  let rng = Rng.create 99 in
  let g = Regular.sample_connected ~rng ~n:2048 ~d:8 Regular.Pairing in
  let fault =
    Fault.plan
      ~burst:(Fault.burst ~loss:0.2 ~burst_len:4.)
      ~crash_rate:0.01 ~recover_rate:0.2 ()
  in
  let p = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:2048 ~d:8 ()) in
  check_line "fault2048"
    "rounds=52 comp=27 informed=1736 pop=1935 push=51330 pull=5760 chan=387437"
    (Engine.run ~fault ~forget_on_recover:true ~rng
       ~topology:(Topology.of_graph g) ~protocol:p ~sources:[ 0 ] ())

let test_pinned_strike () =
  let rng = Rng.create 7 in
  let g = Regular.sample_connected ~rng ~n:1024 ~d:8 Regular.Pairing in
  let fault =
    Fault.plan ~call_failure:0.05 ~link_loss:0.05
      ~strike:
        (Fault.strike ~adversary:Fault.Highest_degree ~at_round:3 ~count:128 ())
      ()
  in
  let p = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:1024 ~d:8 ()) in
  check_line "strike1024"
    "rounds=28 comp=22 informed=896 pop=896 push=22449 pull=2841 chan=85247"
    (Engine.run ~fault ~rng ~topology:(Topology.of_graph g) ~protocol:p
       ~sources:[ 0 ] ())

let test_pinned_skew () =
  let rng = Rng.create 11 in
  let g = Regular.sample_connected ~rng ~n:1024 ~d:8 Regular.Pairing in
  let offsets = Array.init 1024 (fun _ -> Rng.int rng 3) in
  let p = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:1024 ~d:8 ()) in
  check_line "skew1024"
    "rounds=30 comp=21 informed=1024 pop=1024 push=32744 pull=4110 chan=122880"
    (Engine.run
       ~skew:(fun v -> offsets.(v))
       ~rng ~topology:(Topology.of_graph g) ~protocol:p ~sources:[ 0 ] ())

let test_pinned_multi () =
  let rng = Rng.create 13 in
  let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
  let p = Algorithm.make (Params.make ~n_estimate:512 ~d:8 ()) in
  let msgs =
    [ { Multi.source = 0; created = 0 }; { Multi.source = 5; created = 2 } ]
  in
  let r =
    Multi.run ~rng ~topology:(Topology.of_graph g) ~protocol:p ~messages:msgs ()
  in
  let line =
    Printf.sprintf "rounds=%d chan=%d pop=%d%s" r.Multi.rounds r.Multi.channels
      r.Multi.population
      (String.concat ""
         (Array.to_list
            (Array.map
               (fun m ->
                 Printf.sprintf " [comp=%s informed=%d tx=%d]"
                   (match m.Multi.completion_round with
                   | Some c -> string_of_int c
                   | None -> "None")
                   m.Multi.informed m.Multi.transmissions)
               r.Multi.messages)))
  in
  Alcotest.(check string) "multi512"
    "rounds=16 chan=32768 pop=512 [comp=10 informed=512 tx=12272] [comp=12 \
     informed=512 tx=12264]"
    line

let test_pinned_async () =
  let rng = Rng.create 17 in
  let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
  let p = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:512 ~d:8 ()) in
  let a = Async.run ~rng ~graph:g ~protocol:p ~sources:[ 0 ] () in
  let line =
    Printf.sprintf "act=%d informed=%d tx=%d comp=%s" a.Async.activations
      a.Async.informed a.Async.transmissions
      (match a.Async.completion_time with
      | Some t -> Printf.sprintf "%.6f" t
      | None -> "None")
  in
  Alcotest.(check string) "async512"
    "act=14336 informed=512 tx=12024 comp=21.811273" line

let test_pinned_heal () =
  let rng = Rng.create 23 in
  let g = Regular.sample_connected ~rng ~n:1024 ~d:8 Regular.Pairing in
  let fault =
    Fault.plan
      ~burst:(Fault.burst ~loss:0.25 ~burst_len:4.)
      ~crash_rate:0.01 ~recover_rate:0.25 ()
  in
  let p = Algorithm.make (Params.make ~alpha:2.0 ~n_estimate:1024 ~d:8 ()) in
  let config = Repair.config ~n:1024 () in
  let r =
    Repair.self_heal ~fault ~config ~rng ~topology:(Topology.of_graph g)
      ~protocol:p ~sources:[ 0 ] ()
  in
  check_line "heal1024"
    "rounds=57 comp=35 informed=1024 pop=1024 push=39775 pull=893 chan=182790"
    r;
  Alcotest.(check int) "heal epochs" 1 (Engine.epochs_used r);
  Alcotest.(check int) "heal repair tx" 41 (Engine.repair_tx r)

(* --- replicate_parallel ≡ replicate --- *)

(* A measurement that consumes plenty of randomness and returns a
   structured value, so any stream divergence or slot mix-up shows. *)
let measurement rng =
  let n = 64 + Rng.int rng 64 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := (!acc * 31) + Rng.int rng 1_000_003
  done;
  (n, !acc, Rng.float rng)

let test_parallel_matches_sequential () =
  let reps = 17 in
  let seq = Experiment.replicate ~seed:42 ~reps measurement in
  List.iter
    (fun domains ->
      let par =
        Experiment.replicate_parallel ~domains ~seed:42 ~reps measurement
      in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d equals sequential" domains)
        true (par = seq))
    [ 1; 2; 3; 5; 8 ]

let test_parallel_engine_runs () =
  (* Same equivalence through a full engine run per repetition. *)
  let f rng =
    let g = Regular.sample_connected ~rng ~n:256 ~d:6 Regular.Pairing in
    let p = Algorithm.make (Params.make ~n_estimate:256 ~d:6 ()) in
    let r = Run.once ~rng ~graph:g ~protocol:p ~source:0 () in
    result_line r
  in
  let seq = Experiment.replicate ~seed:7 ~reps:6 f in
  let par = Experiment.replicate_parallel ~domains:3 ~seed:7 ~reps:6 f in
  Alcotest.(check (list string)) "engine runs identical" seq par

let test_parallel_property =
  QCheck.Test.make ~name:"replicate_parallel ≡ replicate (any domains/reps)"
    ~count:40
    QCheck.(triple small_int (int_range 1 12) (int_range 1 8))
    (fun (seed, reps, domains) ->
      Experiment.replicate_parallel ~domains ~seed ~reps measurement
      = Experiment.replicate ~seed ~reps measurement)

let test_parallel_validation () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Experiment.replicate_parallel: domains < 1") (fun () ->
      ignore
        (Experiment.replicate_parallel ~domains:0 ~seed:1 ~reps:2 (fun _ -> ())));
  Alcotest.(check bool) "default_domains >= 1" true
    (Experiment.default_domains () >= 1);
  Alcotest.(check bool) "default_domains <= 8" true
    (Experiment.default_domains () <= 8)

let () =
  Alcotest.run "hotpath"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic ops" `Quick test_bitset_basic;
          QCheck_alcotest.to_alcotest test_bitset_model;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "bef 4096" `Quick test_pinned_bef;
          Alcotest.test_case "burst+crash/recover 2048" `Quick test_pinned_fault;
          Alcotest.test_case "strike 1024" `Quick test_pinned_strike;
          Alcotest.test_case "skew 1024" `Quick test_pinned_skew;
          Alcotest.test_case "multi-message 512" `Quick test_pinned_multi;
          Alcotest.test_case "async 512" `Quick test_pinned_async;
          Alcotest.test_case "self-heal 1024" `Quick test_pinned_heal;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "fixed domain counts" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "engine runs" `Quick test_parallel_engine_runs;
          QCheck_alcotest.to_alcotest test_parallel_property;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
        ] );
    ]
