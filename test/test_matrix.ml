(* Tests for the scenario-matrix layer: grammar (sweep/zip/expect,
   ranges, CRLF), grid expansion (cartesian count, coordinate
   uniqueness, deterministic order, seed independence — qcheck), seed
   modes, quick-mode patching, gate evaluation, execution equivalence
   with Scenario.run, and the bench-document validator/differ. *)

module Rng = Rumor_rng.Rng
module Scenario = Rumor_cli.Scenario
module Matrix = Rumor_cli.Matrix
module Experiment = Rumor_stats.Experiment
module Engine = Rumor_sim.Engine
module Json = Rumor_obs.Json
module Benchdoc = Rumor_obs.Benchdoc

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_fragments what msg fragments =
  List.iter
    (fun frag ->
      if not (contains msg frag) then
        Alcotest.failf "%s %S lacks fragment %S" what msg frag)
    fragments

let spec_exn text =
  match Matrix.parse text with
  | Ok s -> s
  | Error e -> Alcotest.failf "matrix parse failed: %s" e

let cells_exn spec =
  match Matrix.cells spec with
  | Ok cs -> cs
  | Error e -> Alcotest.failf "cell expansion failed: %s" e

let expect_error text fragments =
  match Matrix.parse text with
  | Ok _ -> Alcotest.failf "expected parse error for %S" text
  | Error msg -> check_fragments "error" msg fragments

(* --- grammar ------------------------------------------------------ *)

let test_parse_basic () =
  let s =
    spec_exn
      "id = G1\n\
       title = a grid\n\
       seed = 7\n\
       n = 64\n\
       reps = 2\n\
       sweep protocol = bef, push\n\
       sweep loss = 0, 0.1\n\
       expect coverage >= 0.5\n"
  in
  Alcotest.(check string) "id" "G1" s.Matrix.id;
  Alcotest.(check string) "title" "a grid" s.Matrix.title;
  Alcotest.(check int) "axes" 2 (List.length s.Matrix.axes);
  Alcotest.(check int) "cells" 4 (Matrix.cell_count s);
  Alcotest.(check int) "gates" 1 (List.length s.Matrix.gates);
  Alcotest.(check bool) "derived seeds" false s.Matrix.offset_seeds

let test_parse_range () =
  let s = spec_exn "sweep n = 1k..8k *2\n" in
  let ax = List.hd s.Matrix.axes in
  Alcotest.(check (list string))
    "multiplicative" [ "1024"; "2048"; "4096"; "8192" ] ax.Matrix.values;
  let s = spec_exn "sweep d = 4..10 +3\n" in
  let ax = List.hd s.Matrix.axes in
  Alcotest.(check (list string)) "additive" [ "4"; "7"; "10" ] ax.Matrix.values;
  (* mixed list + range in one sweep *)
  let s = spec_exn "sweep n = 64, 1k..2k *2\n" in
  let ax = List.hd s.Matrix.axes in
  Alcotest.(check (list string)) "mixed" [ "64"; "1024"; "2048" ] ax.Matrix.values

let test_parse_zip_and_stride () =
  let s =
    spec_exn
      "seed = 1000\n\
       sweep burst_loss = 0, 0.2, 0.3 seed+=10\n\
       zip burst_len = 4, 4, 6\n\
       sweep churn_rate = 0, 0.02 seed+=1\n"
  in
  Alcotest.(check bool) "offset mode" true s.Matrix.offset_seeds;
  let cs = cells_exn s in
  Alcotest.(check int) "count" 6 (Array.length cs);
  (* last axis fastest; seeds = 1000 + 10*i + j *)
  let seeds = Array.to_list (Array.map (fun c -> c.Matrix.cell_seed) cs) in
  Alcotest.(check (list int))
    "offset seeds"
    [ 1000; 1001; 1010; 1011; 1020; 1021 ]
    seeds;
  (* zip rides the burst axis *)
  let c4 = cs.(4) in
  Alcotest.(check string)
    "zip value" "6"
    (List.assoc "burst_len" c4.Matrix.coords);
  Alcotest.(check (Alcotest.float 1e-9))
    "zip applied" 6.0 c4.Matrix.scenario.Scenario.burst_len

let test_parse_crlf () =
  (* CRLF + trailing whitespace parse identically, both for scenario
     and matrix files. *)
  let unix_text = "seed = 5\nn = 64\nsweep loss = 0, 0.1\n" in
  let crlf_text = "seed = 5 \r\nn = 64\t\r\nsweep loss = 0, 0.1 \r\n" in
  let a = spec_exn unix_text and b = spec_exn crlf_text in
  Alcotest.(check int) "same cells" (Matrix.cell_count a) (Matrix.cell_count b);
  Alcotest.(check int) "base n" 64 b.Matrix.base.Scenario.n;
  match Scenario.parse "n = 64 \r\nloss = 0.25\t \r\n" with
  | Error e -> Alcotest.failf "scenario CRLF rejected: %s" e
  | Ok t ->
      Alcotest.(check int) "n" 64 t.Scenario.n;
      Alcotest.(check (Alcotest.float 1e-9)) "loss" 0.25 t.Scenario.loss

let test_parse_errors () =
  expect_error "sweep n 1, 2\n" [ "line 1"; "sweep key = v1, v2" ];
  expect_error "nonsense\n" [ "line 1"; "key = value" ];
  expect_error "zip d = 1, 2\n" [ "line 1"; "zip before any sweep" ];
  expect_error "sweep n = 64, 128\nzip d = 4\n" [ "line 2"; "has 1 value" ];
  expect_error "sweep seed = 1, 2\n" [ "line 1"; "cannot be swept" ];
  expect_error "expect coverage >= \n" [ "line 1"; "expect metric" ];
  expect_error "expect coverage ~= 1\n" [ "line 1"; "unknown comparison" ];
  expect_error "expect bogus >= 1\n" [ "line 1"; "unknown gate metric" ];
  expect_error "sweep n = 8k..1k *2\n" [ "line 1"; "backwards" ];
  expect_error "sweep n = 1k..8k *1\n" [ "line 1"; "bad range step" ];
  expect_error "n = 64\nn = 128\n" [ "line 2"; "duplicate key 'n'" ];
  expect_error "sweep n = 64, 128\nn = 256\n"
    [ "line 2"; "duplicate key 'n'" ];
  expect_error "mode = cloud\n" [ "line 1"; "kernel or service" ];
  (* line numbers stay exact under CRLF *)
  expect_error "n = 64\r\nbogus_key = 1\r\n" [ "line 2"; "unknown key" ];
  (* service keys are invalid in kernel mode ... *)
  expect_error "rate = 50\n" [ "unknown key: rate" ];
  (* ... and kernel-only keys are invalid in service mode *)
  expect_error "mode = service\ncrash_rate = 0.1\n"
    [ "not supported in service mode" ];
  (* cell-level failures carry coordinates *)
  let s = spec_exn "topology = implicit-regular\nsweep n = 63, 64\n" in
  (match Matrix.cells s with
  | Ok _ -> Alcotest.fail "odd implicit n should fail expansion"
  | Error e -> check_fragments "error" e [ "cell 0"; "n = 63"; "even n" ])

(* --- grid expansion (qcheck) -------------------------------------- *)

let axis_lengths_gen =
  QCheck.Gen.(list_size (int_range 1 3) (int_range 1 4))

let spec_of_lengths lengths =
  (* Sweep distinct harmless integer keys. *)
  let keys = [ "n"; "d"; "fanout" ] in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "seed = 42\n";
  List.iteri
    (fun i len ->
      let key = List.nth keys i in
      let values =
        List.init len (fun j ->
            match key with
            | "n" -> string_of_int (64 + (64 * j))
            | _ -> string_of_int (1 + j))
      in
      Buffer.add_string buf
        (Printf.sprintf "sweep %s = %s\n" key (String.concat ", " values)))
    lengths;
  spec_exn (Buffer.contents buf)

let test_qcheck_grid () =
  let test =
    QCheck.Test.make ~count:100 ~name:"grid expansion invariants"
      (QCheck.make axis_lengths_gen)
      (fun lengths ->
        let lengths = if lengths = [] then [ 2 ] else lengths in
        let spec = spec_of_lengths lengths in
        let cs = cells_exn spec in
        let expected = List.fold_left ( * ) 1 lengths in
        (* cartesian count *)
        if Array.length cs <> expected then
          QCheck.Test.fail_reportf "count %d <> %d" (Array.length cs) expected;
        (* no duplicate coordinates *)
        let coord_strings =
          Array.to_list
            (Array.map
               (fun c ->
                 String.concat ";"
                   (List.map (fun (k, v) -> k ^ "=" ^ v) c.Matrix.coords))
               cs)
        in
        let sorted = List.sort_uniq compare coord_strings in
        if List.length sorted <> expected then
          QCheck.Test.fail_report "duplicate coordinates";
        (* deterministic order: re-expansion is identical *)
        let cs2 = cells_exn spec in
        Array.iteri
          (fun i c ->
            if
              c.Matrix.coords <> cs2.(i).Matrix.coords
              || c.Matrix.cell_seed <> cs2.(i).Matrix.cell_seed
            then QCheck.Test.fail_report "non-deterministic expansion")
          cs;
        (* per-cell seed independence: derived seeds are distinct, so
           distinct cells never share a replication stream *)
        let seeds =
          List.sort_uniq compare
            (Array.to_list (Array.map (fun c -> c.Matrix.cell_seed) cs))
        in
        if List.length seeds <> expected then
          QCheck.Test.fail_report "cells share a seed";
        true)
  in
  QCheck.Test.check_exn test

let test_derived_seeds_distinct_from_neighbors () =
  (* The derived stream depends only on the file seed: same file seed
     => same cell seeds; different file seed => (overwhelmingly)
     different. *)
  let s1 = spec_exn "seed = 1\nsweep n = 64, 128, 256\n" in
  let s1' = spec_exn "seed = 1\nsweep n = 64, 128, 256\n" in
  let s2 = spec_exn "seed = 2\nsweep n = 64, 128, 256\n" in
  let seeds s = Array.map (fun c -> c.Matrix.cell_seed) (cells_exn s) in
  Alcotest.(check (array int)) "reproducible" (seeds s1) (seeds s1');
  Alcotest.(check bool) "file seed matters" false (seeds s1 = seeds s2)

(* --- quick-mode patching ------------------------------------------ *)

let test_patching () =
  let s = spec_exn "seed = 9\nreps = 5\nsweep n = 64, 128, 256\n" in
  let s' =
    match Matrix.set_base s ~key:"reps" ~value:"2" with
    | Ok s -> s
    | Error e -> Alcotest.failf "set_base: %s" e
  in
  Alcotest.(check int) "reps patched" 2 s'.Matrix.base.Scenario.reps;
  (match Matrix.set_base s ~key:"bogus" ~value:"1" with
  | Ok _ -> Alcotest.fail "bogus key accepted"
  | Error _ -> ());
  let s'' =
    match Matrix.override_axis s' ~key:"n" ~values:[ "64"; "128" ] with
    | Ok s -> s
    | Error e -> Alcotest.failf "override_axis: %s" e
  in
  Alcotest.(check int) "axis shrunk" 2 (Matrix.cell_count s'');
  (match Matrix.override_axis s' ~key:"d" ~values:[ "4" ] with
  | Ok _ -> Alcotest.fail "missing axis accepted"
  | Error _ -> ());
  (* offset-mode quick prefix keeps the same cell seeds *)
  let full = spec_exn "seed = 100\nsweep n = 64, 128, 256 seed+=1\n" in
  let quick =
    match Matrix.override_axis full ~key:"n" ~values:[ "64"; "128" ] with
    | Ok s -> s
    | Error e -> Alcotest.failf "override_axis: %s" e
  in
  let fs = cells_exn full and qs = cells_exn quick in
  Alcotest.(check int) "prefix seed 0" fs.(0).Matrix.cell_seed
    qs.(0).Matrix.cell_seed;
  Alcotest.(check int) "prefix seed 1" fs.(1).Matrix.cell_seed
    qs.(1).Matrix.cell_seed

(* --- gates -------------------------------------------------------- *)

let test_gates () =
  let g m op b = { Matrix.metric = m; op; bound = b } in
  Alcotest.(check bool) "ge pass" true (Matrix.gate_holds (g "x" Matrix.Ge 1.) 1.);
  Alcotest.(check bool) "ge fail" false (Matrix.gate_holds (g "x" Matrix.Ge 1.) 0.99);
  Alcotest.(check bool) "le pass" true (Matrix.gate_holds (g "x" Matrix.Le 2.) 2.);
  Alcotest.(check bool) "lt fail" false (Matrix.gate_holds (g "x" Matrix.Lt 2.) 2.);
  Alcotest.(check bool) "eq pass" true (Matrix.gate_holds (g "x" Matrix.Eq 1.) 1.)

(* --- execution ---------------------------------------------------- *)

let test_run_matches_scenario_run () =
  (* A 1x2 grid with offset seeds runs each cell bit-identically to
     Scenario.run of the equivalent single scenario. *)
  let s =
    spec_exn
      "seed = 11\nn = 128\nd = 8\nreps = 3\nsweep loss = 0, 0.05 seed+=1\n\
       expect coverage >= 0.1\n"
  in
  let result =
    match Matrix.run ~domains:2 s with
    | Ok r -> r
    | Error e -> Alcotest.failf "run: %s" e
  in
  Alcotest.(check int) "outcomes" 2 (List.length result.Matrix.outcomes);
  Alcotest.(check bool) "not truncated" false result.Matrix.truncated;
  List.iteri
    (fun i o ->
      let scenario = o.Matrix.cell.Matrix.scenario in
      Alcotest.(check int) "cell seed" (11 + i) scenario.Scenario.seed;
      let direct = Scenario.run { scenario with domains = 1 } in
      let m k = List.assoc k o.Matrix.metrics in
      Alcotest.(check (Alcotest.float 1e-12))
        "coverage" direct.Scenario.coverage.Rumor_stats.Summary.mean
        (m "coverage");
      Alcotest.(check (Alcotest.float 1e-12))
        "tx_per_node" direct.Scenario.tx_per_node.Rumor_stats.Summary.mean
        (m "tx_per_node");
      Alcotest.(check int) "reps" 3 o.Matrix.reps_done;
      (* gates evaluated on the metrics *)
      List.iter
        (fun (_, observed, pass) ->
          Alcotest.(check bool) "gate pass" true pass;
          Alcotest.(check bool) "observed real" false (Float.is_nan observed))
        o.Matrix.gate_results)
    result.Matrix.outcomes

let test_run_pool_bit_identity () =
  (* Shared-pool execution is scheduling-independent: 1 domain and 4
     domains give identical per-cell results. *)
  let s = spec_exn "seed = 3\nn = 96\nreps = 2\nsweep d = 4, 6, 8\n" in
  let run domains =
    match Matrix.run ~domains s with
    | Ok r ->
        List.map
          (fun o ->
            (* timings differ across pools by construction; only the
               RNG-deterministic metrics must match *)
            ( o.Matrix.cell.Matrix.cell_seed,
              List.filter
                (fun (k, _) -> List.mem k Benchdoc.diffable_metrics)
                o.Matrix.metrics ))
          r.Matrix.outcomes
    | Error e -> Alcotest.failf "run: %s" e
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "bit-identical across pools" true (a = b)

let test_run_tasks_interrupt () =
  (* Interruption: joined cleanly, completed slots only. *)
  let tasks = Array.init 4 (fun i -> { Experiment.seed = i; reps = 2 }) in
  Experiment.request_interrupt ();
  let out =
    Experiment.run_tasks ~domains:2 tasks (fun ~task:_ ~rep:_ _rng -> 1)
  in
  Alcotest.(check int) "all tasks present" 4 (Array.length out);
  Array.iter
    (Array.iter (fun slot -> Alcotest.(check bool) "no slot" true (slot = None)))
    out;
  (* reset the flag for subsequent tests *)
  let _ = Experiment.with_interrupt_signals (fun () -> ()) in
  let out =
    Experiment.run_tasks ~domains:2 tasks (fun ~task ~rep _rng ->
        (task * 10) + rep)
  in
  Array.iteri
    (fun t per_rep ->
      Array.iteri
        (fun r slot ->
          Alcotest.(check (option int)) "slot" (Some ((t * 10) + r)) slot)
        per_rep)
    out

let test_service_mode () =
  (match
     Matrix.parse
       "mode = service\nn = 512\nrate = 40\nsweep rate = 20, 40\n"
   with
  | Ok _ -> Alcotest.fail "duplicate rate accepted"
  | Error e -> check_fragments "error" e [ "duplicate key 'rate'" ]);
  let s =
    spec_exn
      "mode = service\nid = SVC\nn = 512\nduration_s = 2\n\
       sweep rate = 20, 40\nexpect lost <= 0\n"
  in
  let cs = cells_exn s in
  Alcotest.(check int) "cells" 2 (Array.length cs);
  Alcotest.(check string)
    "service key swept" "40"
    (List.assoc "rate" cs.(1).Matrix.service);
  Alcotest.(check string)
    "base service key" "2"
    (List.assoc "duration_s" cs.(1).Matrix.service);
  (* kernel run of a service spec without a driver fails cleanly *)
  (match Matrix.run s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "service cells ran without a driver");
  (* with a driver: metrics come back, gates evaluate *)
  let calls = ref [] in
  let result =
    match
      Matrix.run
        ~run_service:(fun c ->
          calls := c.Matrix.cell_index :: !calls;
          [ ("lost", 0.); ("completed", 10.) ])
        s
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "service run: %s" e
  in
  Alcotest.(check (list int)) "cells driven in order" [ 0; 1 ] (List.rev !calls);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        "wall_s injected" true
        (List.mem_assoc "wall_s" o.Matrix.metrics);
      List.iter
        (fun (_, _, pass) -> Alcotest.(check bool) "gate" true pass)
        o.Matrix.gate_results)
    result.Matrix.outcomes

(* --- JSON points and dry run -------------------------------------- *)

let test_point_json_and_dry_run () =
  let s =
    spec_exn "seed = 5\nn = 64\nreps = 1\nsweep d = 4, 8\nexpect coverage >= 0.0\n"
  in
  let result =
    match Matrix.run ~domains:1 s with
    | Ok r -> r
    | Error e -> Alcotest.failf "run: %s" e
  in
  let data = Matrix.data_json result in
  (match data with
  | Json.Obj fields ->
      Alcotest.(check bool) "has points" true (List.mem_assoc "points" fields);
      (match List.assoc "points" fields with
      | Json.List [ Json.Obj p0; _ ] ->
          (match List.assoc "coords" p0 with
          | Json.Obj [ ("d", Json.String "4") ] -> ()
          | _ -> Alcotest.fail "coords wrong")
      | _ -> Alcotest.fail "points wrong")
  | _ -> Alcotest.fail "data not an object");
  (* round-trips through the encoder/parser *)
  (match Json.of_string (Json.to_string data) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "data_json does not round-trip: %s" e);
  match Matrix.dry_run_table s with
  | Error e -> Alcotest.failf "dry run: %s" e
  | Ok table ->
      check_fragments "dry-run table" table
        [ "cell"; "seed"; "coverage >= 0"; "2 cells" ]

(* --- bench document validation and diffing ------------------------ *)

let doc ?(schema = "rumor-bench/1") ?(truncated = false) experiments =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("created_unix", Json.Int 0);
      ("git", Json.String "test");
      ("ocaml", Json.String "5");
      ("argv", Json.List []);
      ("quick", Json.Bool true);
      ("reps", Json.Int 1);
      ("truncated", Json.Bool truncated);
      ("experiments", Json.List experiments);
    ]

let experiment ?(id = "E1") points =
  Json.Obj
    [
      ("id", Json.String id);
      ("title", Json.String "t");
      ("wall_s", Json.Float 1.);
      ("cpu_s", Json.Float 1.);
      ("gc", Json.Obj []);
      ("peak_rss_kb", Json.Int 0);
      ( "data",
        Json.Obj
          [ ("points", Json.List points); ("gates_failed", Json.Int 0) ] );
    ]

let point ?(coords = [ ("n", "64") ]) metrics =
  Json.Obj
    [
      ( "coords",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) coords) );
      ("seed", Json.Int 1);
      ("reps", Json.Int 1);
      ("truncated", Json.Bool false);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) metrics) );
      ("gates", Json.List []);
    ]

let test_validate () =
  Alcotest.(check (list string))
    "valid doc" []
    (List.map Benchdoc.error_to_string
       (Benchdoc.validate (doc [ experiment [ point [ ("coverage", 1.) ] ] ])));
  (* empty experiments is its own error class *)
  (match Benchdoc.validate (doc []) with
  | [ Benchdoc.Empty_experiments ] -> ()
  | errs ->
      Alcotest.failf "wanted Empty_experiments, got: %s"
        (String.concat "; " (List.map Benchdoc.error_to_string errs)));
  (* schema break is Malformed *)
  match Benchdoc.validate (doc ~schema:"bogus/9" []) with
  | errs when List.exists (function Benchdoc.Malformed _ -> true | _ -> false) errs
    -> ()
  | errs ->
      Alcotest.failf "wanted Malformed, got: %s"
        (String.concat "; " (List.map Benchdoc.error_to_string errs))

let test_diff () =
  let baseline =
    doc
      [
        experiment
          [
            point ~coords:[ ("n", "64") ] [ ("coverage", 1.0); ("rounds", 10.) ];
            point ~coords:[ ("n", "128") ] [ ("coverage", 1.0); ("rounds", 12.) ];
          ];
      ]
  in
  (* identical: clean *)
  let r = Benchdoc.diff ~baseline ~candidate:baseline ~tolerance_pct:5. in
  Alcotest.(check (list string)) "no failures" [] r.Benchdoc.failures;
  (* within tolerance: clean *)
  let close =
    doc
      [
        experiment
          [
            point ~coords:[ ("n", "64") ] [ ("coverage", 1.0); ("rounds", 10.3) ];
            point ~coords:[ ("n", "128") ] [ ("coverage", 1.0); ("rounds", 12.) ];
          ];
      ]
  in
  let r = Benchdoc.diff ~baseline ~candidate:close ~tolerance_pct:5. in
  Alcotest.(check (list string)) "within tolerance" [] r.Benchdoc.failures;
  (* beyond tolerance: failure names the cell and metric *)
  let drifted =
    doc
      [
        experiment
          [
            point ~coords:[ ("n", "64") ] [ ("coverage", 1.0); ("rounds", 20.) ];
            point ~coords:[ ("n", "128") ] [ ("coverage", 1.0); ("rounds", 12.) ];
          ];
      ]
  in
  let r = Benchdoc.diff ~baseline ~candidate:drifted ~tolerance_pct:5. in
  Alcotest.(check int) "one failure" 1 (List.length r.Benchdoc.failures);
  let f = List.hd r.Benchdoc.failures in
  check_fragments "failure" f [ "n = 64"; "rounds" ];
  (* wall_s is not diffed (noise); only the RNG-deterministic set is *)
  let slow =
    doc
      [
        experiment
          [
            point ~coords:[ ("n", "64") ]
              [ ("coverage", 1.0); ("rounds", 10.); ("wall_s", 99.) ];
            point ~coords:[ ("n", "128") ]
              [ ("coverage", 1.0); ("rounds", 12.); ("wall_s", 99.) ];
          ];
      ]
  in
  let r = Benchdoc.diff ~baseline ~candidate:slow ~tolerance_pct:5. in
  Alcotest.(check (list string)) "wall ignored" [] r.Benchdoc.failures;
  (* a baseline cell missing from the candidate fails ... *)
  let missing = doc [ experiment [ point ~coords:[ ("n", "64") ] [ ("coverage", 1.0) ] ] ] in
  let r = Benchdoc.diff ~baseline ~candidate:missing ~tolerance_pct:5. in
  Alcotest.(check bool) "missing cell fails" true (r.Benchdoc.failures <> []);
  (* ... unless the candidate is truncated (partial run) *)
  let truncated_missing =
    doc ~truncated:true
      [
        experiment
          [ point ~coords:[ ("n", "64") ] [ ("coverage", 1.0); ("rounds", 10.) ] ];
      ]
  in
  let r = Benchdoc.diff ~baseline ~candidate:truncated_missing ~tolerance_pct:5. in
  Alcotest.(check (list string)) "truncated tolerated" [] r.Benchdoc.failures;
  Alcotest.(check bool) "but noted" true (r.Benchdoc.notes <> []);
  (* candidate gate failures surface even when scalars match *)
  let gate_failed =
    doc
      [
        Json.Obj
          [
            ("id", Json.String "E1");
            ("title", Json.String "t");
            ("wall_s", Json.Float 1.);
            ("cpu_s", Json.Float 1.);
            ("gc", Json.Obj []);
            ( "data",
              Json.Obj
                [
                  ( "points",
                    Json.List
                      [
                        point ~coords:[ ("n", "64") ]
                          [ ("coverage", 1.0); ("rounds", 10.) ];
                        point ~coords:[ ("n", "128") ]
                          [ ("coverage", 1.0); ("rounds", 12.) ];
                      ] );
                  ("gates_failed", Json.Int 2);
                ] );
          ];
      ]
  in
  let r = Benchdoc.diff ~baseline ~candidate:gate_failed ~tolerance_pct:5. in
  Alcotest.(check bool) "gate failures fail the diff" true
    (r.Benchdoc.failures <> [])

let () =
  Alcotest.run "rumor_matrix"
    [
      ( "grammar",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "ranges" `Quick test_parse_range;
          Alcotest.test_case "zip + stride" `Quick test_parse_zip_and_stride;
          Alcotest.test_case "crlf" `Quick test_parse_crlf;
          Alcotest.test_case "errors pin lines" `Quick test_parse_errors;
        ] );
      ( "grid",
        [
          Alcotest.test_case "qcheck invariants" `Quick test_qcheck_grid;
          Alcotest.test_case "derived seeds" `Quick
            test_derived_seeds_distinct_from_neighbors;
          Alcotest.test_case "quick patching" `Quick test_patching;
          Alcotest.test_case "gates" `Quick test_gates;
        ] );
      ( "run",
        [
          Alcotest.test_case "matches Scenario.run" `Quick
            test_run_matches_scenario_run;
          Alcotest.test_case "pool bit-identity" `Quick
            test_run_pool_bit_identity;
          Alcotest.test_case "interrupt" `Quick test_run_tasks_interrupt;
          Alcotest.test_case "service mode" `Quick test_service_mode;
          Alcotest.test_case "json + dry run" `Quick
            test_point_json_and_dry_run;
        ] );
      ( "benchdoc",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "diff" `Quick test_diff;
        ] );
    ]
