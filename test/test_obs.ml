(* Tests for the rumor_obs telemetry library: JSON encoding/escaping,
   the parser round-trip, metric spans and the result serializers. *)

module Json = Rumor_obs.Json
module Metrics = Rumor_obs.Metrics
module Encode = Rumor_obs.Encode
module Summary = Rumor_stats.Summary
module Trace = Rumor_sim.Trace

(* --- encoding --- *)

let test_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
  Alcotest.(check string) "float keeps a point" "1.0"
    (Json.to_string (Json.Float 1.));
  Alcotest.(check string) "float" "0.5" (Json.to_string (Json.Float 0.5));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_escaping () =
  Alcotest.(check string) "quotes and backslash" "a\\\"b\\\\c"
    (Json.escape_string "a\"b\\c");
  Alcotest.(check string) "newline tab" "l1\\nl2\\tend"
    (Json.escape_string "l1\nl2\tend");
  Alcotest.(check string) "control byte" "\\u0001"
    (Json.escape_string "\001");
  Alcotest.(check string) "encoded string" "\"say \\\"hi\\\"\""
    (Json.to_string (Json.String "say \"hi\""))

let test_nesting () =
  let v =
    Json.Obj
      [
        ("id", Json.String "E1");
        ("sizes", Json.List [ Json.Int 1024; Json.Int 4096 ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("e", Json.Obj []) ]);
      ]
  in
  Alcotest.(check string) "minified"
    "{\"id\":\"E1\",\"sizes\":[1024,4096],\"nested\":{\"empty_list\":[],\"e\":{}}}"
    (Json.to_string v);
  let pretty = Json.to_string ~minify:false v in
  Alcotest.(check bool) "pretty has newlines" true
    (String.contains pretty '\n');
  (* Pretty and minified parse to the same value. *)
  Alcotest.(check bool) "pretty parses to same" true
    (Json.of_string pretty = Ok v)

(* --- parsing --- *)

let test_parse_round_trip () =
  let cases =
    [
      Json.Null;
      Json.Bool false;
      Json.Int 123456789;
      Json.Float (-0.125);
      Json.String "phase \"4\"\n\ttab\\slash";
      Json.List [ Json.Int 1; Json.List [ Json.Null ]; Json.Obj [] ];
      Json.Obj
        [
          ("a", Json.Float 2.5);
          ("b", Json.List [ Json.Bool true ]);
          ("weird key \"x\"", Json.String "");
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
      | Error e -> Alcotest.fail e)
    cases

let test_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "\"unterminated";
  bad "1 2"

let test_parse_unicode_escape () =
  match Json.of_string "\"a\\u00e9b\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "unicode escape did not parse"

let test_accessors () =
  let v =
    Json.Obj [ ("n", Json.Int 5); ("xs", Json.List [ Json.Float 1.5 ]) ]
  in
  Alcotest.(check (option int)) "member int" (Some 5)
    (Option.bind (Json.member "n" v) Json.to_int);
  Alcotest.(check bool) "int coerces to float" true
    (Option.bind (Json.member "n" v) Json.to_float = Some 5.);
  Alcotest.(check (option int)) "missing" None
    (Option.bind (Json.member "zzz" v) Json.to_int)

(* --- metrics --- *)

let test_timed_span () =
  let x, span = Metrics.timed (fun () -> Array.init 100_000 (fun i -> i)) in
  Alcotest.(check int) "result threads through" 100_000 (Array.length x);
  Alcotest.(check bool) "wall time non-negative" true (span.Metrics.wall_s >= 0.);
  Alcotest.(check bool) "allocated" true (span.Metrics.minor_words > 0.);
  match Json.member "gc" (Metrics.span_to_json span) with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "span json has no gc object"

let test_counters () =
  let c = Metrics.counters () in
  Metrics.incr c "push";
  Metrics.incr c "push";
  Metrics.add c "pull" 5;
  Alcotest.(check int) "push" 2 (Metrics.get c "push");
  Alcotest.(check int) "pull" 5 (Metrics.get c "pull");
  Alcotest.(check int) "absent" 0 (Metrics.get c "drop");
  Alcotest.(check string) "sorted json" "{\"pull\":5,\"push\":2}"
    (Json.to_string (Metrics.counters_to_json c))

(* --- serializers --- *)

let test_summary_schema () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4. ] in
  let j = Encode.summary s in
  let field name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some f -> f
    | None -> Alcotest.fail ("missing field " ^ name)
  in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (field "mean");
  Alcotest.(check (float 1e-9)) "min" 1. (field "min");
  Alcotest.(check (float 1e-9)) "max" 4. (field "max");
  Alcotest.(check (option int)) "count" (Some 4)
    (Option.bind (Json.member "count" j) Json.to_int)

let test_engine_result_schema () =
  let rng = Rumor_rng.Rng.create 7 in
  let g = Rumor_gen.Classic.complete 32 in
  let res =
    Rumor_core.Run.once ~stop_when_complete:true ~rng ~graph:g
      ~protocol:(Rumor_core.Baselines.push ~horizon:100 ())
      ~source:0 ()
  in
  let j = Encode.engine_result res in
  List.iter
    (fun name ->
      if Json.member name j = None then
        Alcotest.fail ("missing field " ^ name))
    [
      "rounds"; "completion_round"; "informed"; "population"; "push_tx";
      "pull_tx"; "channels"; "success";
    ];
  Alcotest.(check (option int)) "informed" (Some 32)
    (Option.bind (Json.member "informed" j) Json.to_int)

let test_trace_ndjson () =
  let t = Trace.create () in
  Trace.add t
    {
      Trace.round = 1; informed = 2; newly = 1; push_tx = 1; pull_tx = 0;
      channels = 4;
    };
  Trace.add t
    {
      Trace.round = 2; informed = 5; newly = 3; push_tx = 2; pull_tx = 1;
      channels = 8;
    };
  let nd = Encode.trace_ndjson t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' nd)
  in
  Alcotest.(check int) "one line per row" 2 (List.length lines);
  (* Every line is itself a valid JSON object with the row schema. *)
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Ok row ->
          Alcotest.(check (option int))
            (Printf.sprintf "round of line %d" i)
            (Some (i + 1))
            (Option.bind (Json.member "round" row) Json.to_int)
      | Error e -> Alcotest.fail ("line does not parse: " ^ e))
    lines

(* --- parser hardening: nesting depth and trailing garbage --- *)

let expect_error what = function
  | Ok _ -> Alcotest.failf "expected a parse error: %s" what
  | Error e ->
      Alcotest.(check bool)
        (what ^ ": error carries a message")
        true
        (String.length e > 0)

let nested_arrays depth =
  String.concat ""
    (List.init depth (fun _ -> "[")
    @ [ "0" ]
    @ List.init depth (fun _ -> "]"))

let test_parse_depth_limit () =
  (* A crafted megabyte of '[' must be rejected, not recursed into:
     this is the NDJSON hostile-input case the serve layer feeds the
     parser. An unbounded parser stack-overflows here. *)
  let bomb = String.make 100_000 '[' in
  expect_error "100k open brackets" (Json.of_string bomb);
  (* The default bound sits at 256 open containers. *)
  (match Json.of_string (nested_arrays Json.default_max_depth) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth = bound should parse: %s" e);
  expect_error "bound + 1"
    (Json.of_string (nested_arrays (Json.default_max_depth + 1)));
  (* Objects count toward the same bound as arrays. *)
  let deep_obj =
    String.concat ""
      (List.init 300 (fun _ -> {|{"k":|}) @ [ "0" ]
      @ List.init 300 (fun _ -> "}"))
  in
  expect_error "300 nested objects" (Json.of_string deep_obj)

let test_parse_depth_custom () =
  (match Json.of_string ~max_depth:2 {|{"a":[1,2]}|} with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth-2 value under bound 2: %s" e);
  expect_error "bound 2, depth 3" (Json.of_string ~max_depth:2 {|{"a":[[1]]}|});
  expect_error "bound 1 rejects any nesting"
    (Json.of_string ~max_depth:1 {|[[0]]|});
  Alcotest.check_raises "max_depth 0 invalid"
    (Invalid_argument "Json.of_string: max_depth must be >= 1") (fun () ->
      ignore (Json.of_string ~max_depth:0 "1"))

let test_parse_trailing_garbage () =
  (* Trailing whitespace is fine... *)
  (match Json.of_string "{\"a\":1}  \n\t " with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trailing whitespace: %s" e);
  (* ...but anything else after the value is an error, with an offset. *)
  expect_error "second value" (Json.of_string {|{"a":1} {"b":2}|});
  expect_error "stray bytes" (Json.of_string "true x");
  expect_error "concatenated scalars" (Json.of_string "1 2");
  expect_error "close bracket surplus" (Json.of_string "[1]]")

(* --- latency histogram --- *)

module Latency = Rumor_obs.Latency

let test_latency_quantiles () =
  let t = Latency.create () in
  Alcotest.(check int) "empty count" 0 (Latency.count t);
  Alcotest.(check (float 0.)) "empty quantile" 0. (Latency.quantile t 0.5);
  (* 100 samples of 1ms..100ms: log-bucketed quantiles carry ~9%
     relative error, so check envelopes rather than exact ranks. *)
  for i = 1 to 100 do
    Latency.add t (float_of_int i *. 1e-3)
  done;
  Alcotest.(check int) "count" 100 (Latency.count t);
  Alcotest.(check (float 1e-12)) "exact max" 0.1 (Latency.max_seen t);
  Alcotest.(check (float 1e-12)) "q1 = max" 0.1 (Latency.quantile t 1.0);
  let p50 = Latency.quantile t 0.5 in
  Alcotest.(check bool) "p50 in envelope" true (p50 > 0.04 && p50 < 0.062);
  let p99 = Latency.quantile t 0.99 in
  Alcotest.(check bool) "p99 in envelope" true (p99 > 0.085 && p99 <= 0.1);
  Alcotest.(check bool) "mean exact-ish" true
    (abs_float (Latency.mean t -. 0.0505) < 1e-9);
  (* monotone in q *)
  let qs = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let vals = List.map (Latency.quantile t) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "quantiles monotone" true (mono vals)

let test_latency_merge_and_json () =
  let a = Latency.create () and b = Latency.create () in
  for i = 1 to 50 do
    Latency.add a (float_of_int i *. 1e-3)
  done;
  for i = 51 to 100 do
    Latency.add b (float_of_int i *. 1e-3)
  done;
  let whole = Latency.create () in
  for i = 1 to 100 do
    Latency.add whole (float_of_int i *. 1e-3)
  done;
  Latency.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 100 (Latency.count a);
  Alcotest.(check (float 1e-12)) "merged max" (Latency.max_seen whole)
    (Latency.max_seen a);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "merge = bulk at q=%g" q)
        (Latency.quantile whole q) (Latency.quantile a q))
    [ 0.5; 0.9; 0.99 ];
  match Latency.to_json a with
  | Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("field " ^ k) true (List.mem_assoc k fields))
        [ "count"; "mean_ms"; "p50_ms"; "p90_ms"; "p99_ms"; "max_ms" ];
      Alcotest.(check (option int)) "count field" (Some 100)
        (Option.bind (Json.member "count" (Json.Obj fields)) Json.to_int)
  | _ -> Alcotest.fail "to_json not an object"

let test_latency_rejects_non_finite () =
  let t = Latency.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Latency.add: non-finite sample")
    (fun () -> Latency.add t Float.nan);
  Latency.add t (-1.);
  Alcotest.(check (float 0.)) "negative clamps to 0" 0. (Latency.max_seen t)

let () =
  Alcotest.run "rumor_obs"
    [
      ( "json-encode",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "nesting" `Quick test_nesting;
        ] );
      ( "json-parse",
        [
          Alcotest.test_case "round trip" `Quick test_parse_round_trip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "unicode escape" `Quick test_parse_unicode_escape;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "depth limit" `Quick test_parse_depth_limit;
          Alcotest.test_case "depth custom bound" `Quick
            test_parse_depth_custom;
          Alcotest.test_case "trailing garbage" `Quick
            test_parse_trailing_garbage;
        ] );
      ( "latency",
        [
          Alcotest.test_case "quantiles" `Quick test_latency_quantiles;
          Alcotest.test_case "merge + json" `Quick test_latency_merge_and_json;
          Alcotest.test_case "rejects non-finite" `Quick
            test_latency_rejects_non_finite;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "timed span" `Quick test_timed_span;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "serializers",
        [
          Alcotest.test_case "summary schema" `Quick test_summary_schema;
          Alcotest.test_case "engine result schema" `Quick
            test_engine_result_schema;
          Alcotest.test_case "trace ndjson" `Quick test_trace_ndjson;
        ] );
    ]
