(* Implicit-topology and word-level-bitset tests.

   The implicit views promise the same graph contract as a materialised
   CSR (symmetry, exact degrees, no self-loops) while computing every
   neighbour from a seed; the word-level bitset paths promise exactly
   the semantics of the bit-at-a-time loops they replaced. Both are
   checked differentially here — against [Topology.to_graph] /
   [Classic.hypercube] on one side and a naive reference on the
   other — plus a pinned broadcast showing the implicit hypercube is
   bit-for-bit the materialised one to the engine. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Classic = Rumor_gen.Classic
module Topology = Rumor_sim.Topology
module Bitset = Rumor_sim.Bitset
module Engine = Rumor_sim.Engine
module Baselines = Rumor_core.Baselines
module Scenario = Rumor_cli.Scenario

(* ------------------------------------------------------------------ *)
(* Implicit views vs the graph contract.                               *)
(* ------------------------------------------------------------------ *)

(* Multiset of v's neighbours under a view, as a sorted list (the views
   may produce parallel edges, so sets would hide miscounts). *)
let adjacency t v =
  List.sort Int.compare
    (List.init (t.Topology.degree v) (t.Topology.neighbor v))

let check_symmetric_no_self name t =
  let n = t.Topology.capacity in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if w = v then
          Alcotest.failf "%s: self-loop at %d (n=%d)" name v n;
        if w < 0 || w >= n then
          Alcotest.failf "%s: neighbour %d of %d out of range" name w v;
        let back =
          List.length (List.filter (fun x -> x = v) (adjacency t w))
        in
        let forth =
          List.length (List.filter (fun x -> x = w) (adjacency t v))
        in
        if back <> forth then
          Alcotest.failf "%s: asymmetric edge %d-%d (%d vs %d)" name v w forth
            back)
      (adjacency t v)
  done

let prop_implicit_regular_contract =
  QCheck.Test.make ~count:60 ~name:"implicit-regular: d-regular, symmetric, no self-loops"
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, d) ->
      let n = 2 * (8 + (seed mod 40)) in
      let t = Topology.implicit_regular ~seed ~n ~d in
      check_symmetric_no_self "implicit-regular" t;
      for v = 0 to n - 1 do
        if t.Topology.degree v <> d then
          Alcotest.failf "degree %d at %d, want %d" (t.Topology.degree v) v d
      done;
      (* The materialisation must carry exactly n*d/2 edge copies: every
         matching contributes n/2, nothing is lost or invented. *)
      let g = Topology.to_graph t in
      Graph.m g = n * d / 2)

let prop_implicit_regular_matches_materialised =
  QCheck.Test.make ~count:40
    ~name:"implicit-regular: view and to_graph agree on every adjacency"
    QCheck.small_int
    (fun seed ->
      let n = 2 * (6 + (seed mod 30)) and d = 4 in
      let t = Topology.implicit_regular ~seed ~n ~d in
      let g = Topology.to_graph t in
      for v = 0 to n - 1 do
        let from_view = adjacency t v in
        let from_graph =
          List.sort Int.compare (Array.to_list (Graph.neighbors g v))
        in
        if from_view <> from_graph then
          Alcotest.failf "adjacency of %d differs (seed %d, n %d)" v seed n
      done;
      true)

let prop_implicit_chords_contract =
  QCheck.Test.make ~count:50 ~name:"implicit-chords: ring + symmetric chords"
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, d) ->
      let n = 2 * (6 + (seed mod 40)) in
      let t = Topology.implicit_chords ~seed ~n ~d in
      check_symmetric_no_self "implicit-chords" t;
      for v = 0 to n - 1 do
        let prev = if v = 0 then n - 1 else v - 1 in
        let next = if v = n - 1 then 0 else v + 1 in
        if t.Topology.neighbor v 0 <> prev || t.Topology.neighbor v 1 <> next
        then Alcotest.failf "ring edges of %d wrong (n=%d)" v n
      done;
      true)

let test_implicit_hypercube_order () =
  (* Stronger than symmetry: neighbour-by-neighbour equality with the
     materialised cube's CSR, in order. This is what makes broadcasts
     over the two representations consume randomness identically. *)
  List.iter
    (fun dim ->
      let n = 1 lsl dim in
      let t = Topology.implicit_hypercube ~n in
      let g = Classic.hypercube dim in
      Alcotest.(check int) "capacity" n t.Topology.capacity;
      for v = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "degree of %d (dim %d)" v dim)
          (Graph.degree g v) (t.Topology.degree v);
        for i = 0 to dim - 1 do
          Alcotest.(check int)
            (Printf.sprintf "neighbor %d of %d (dim %d)" i v dim)
            (Graph.neighbor g v i)
            (t.Topology.neighbor v i)
        done
      done)
    [ 1; 2; 3; 5; 7 ]

let test_implicit_hypercube_broadcast_identical () =
  (* Same seed, same source: the whole engine result must be
     bit-identical between the implicit view and the materialised
     cube — rounds, transmissions, channel count, everything. *)
  let dim = 8 in
  let run topology =
    let rng = Rng.create 77 in
    Engine.run ~rng ~topology
      ~protocol:(Baselines.push_pull ~fanout:1 ~horizon:60 ())
      ~sources:[ 3 ] ()
  in
  let a = run (Topology.implicit_hypercube ~n:(1 lsl dim)) in
  let b = run (Topology.of_graph (Classic.hypercube dim)) in
  Alcotest.(check int) "rounds" b.Engine.rounds a.Engine.rounds;
  Alcotest.(check int) "informed" b.Engine.informed a.Engine.informed;
  Alcotest.(check int) "push tx" b.Engine.push_tx a.Engine.push_tx;
  Alcotest.(check int) "pull tx" b.Engine.pull_tx a.Engine.pull_tx;
  Alcotest.(check int) "channels" b.Engine.channels a.Engine.channels;
  Alcotest.(check (option int))
    "completion round" b.Engine.completion_round a.Engine.completion_round

let test_implicit_validation () =
  List.iter
    (fun f -> try ignore (f ()); Alcotest.fail "no exception" with
      | Invalid_argument _ -> ())
    [
      (fun () -> Topology.implicit_regular ~seed:1 ~n:9 ~d:3);
      (fun () -> Topology.implicit_regular ~seed:1 ~n:0 ~d:3);
      (fun () -> Topology.implicit_regular ~seed:1 ~n:8 ~d:0);
      (fun () -> Topology.implicit_chords ~seed:1 ~n:2 ~d:2);
      (fun () -> Topology.implicit_chords ~seed:1 ~n:9 ~d:4);
      (fun () -> Topology.implicit_hypercube ~n:1);
    ]

(* ------------------------------------------------------------------ *)
(* Scenario integration: caps and rejections.                          *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_scenario_guards () =
  let rng = Rng.create 1 in
  (try
     ignore
       (Scenario.make_graph ~rng ~topology:"regular"
          ~n:(Scenario.materialise_cap + 1) ~d:8);
     Alcotest.fail "over-cap materialisation accepted"
   with Failure msg ->
     Alcotest.(check bool)
       "cap error names the implicit alternatives" true
       (contains ~sub:"implicit-regular" msg));
  (try
     ignore (Scenario.make_graph ~rng ~topology:"implicit-regular" ~n:64 ~d:4);
     Alcotest.fail "implicit materialisation accepted"
   with Failure _ -> ());
  (match Scenario.parse "topology = implicit-regular\njoin_prob = 0.1\n" with
  | Ok _ -> Alcotest.fail "implicit + churn accepted"
  | Error _ -> ());
  (match Scenario.parse "topology = implicit-regular\nn = 4097\n" with
  | Ok _ -> Alcotest.fail "odd n accepted for implicit-regular"
  | Error _ -> ());
  match Scenario.parse "topology = implicit-chords\nn = 4096\nd = 6\n" with
  | Ok s ->
      let t =
        Scenario.make_topology ~rng ~topology:s.Scenario.topology
          ~n:s.Scenario.n ~d:s.Scenario.d
      in
      Alcotest.(check int) "chords capacity" 4096 t.Topology.capacity
  | Error e -> Alcotest.failf "valid implicit scenario rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Word-level bitset vs a bit-at-a-time reference.                     *)
(* ------------------------------------------------------------------ *)

let ref_cardinal t =
  let c = ref 0 in
  for i = 0 to Bitset.length t - 1 do
    if Bitset.get t i then incr c
  done;
  !c

let ref_members t =
  List.filter (Bitset.get t) (List.init (Bitset.length t) Fun.id)

let ref_next_set t i =
  let n = Bitset.length t in
  let rec go j = if j >= n then -1 else if Bitset.get t j then j else go (j + 1) in
  go i

(* Random lengths straddle word boundaries on purpose: len mod 64 = 0,
   1, 63 all appear, so the padding-word masking is exercised. *)
let prop_bitset_word_ops =
  QCheck.Test.make ~count:200 ~name:"bitset word ops match bit-at-a-time reference"
    QCheck.(pair small_int (int_range 0 200))
    (fun (seed, len) ->
      let rng = Rng.create (1 + seed) in
      let t = Bitset.create len in
      (* Churn bits, including re-clears, to dirty then re-zero padding
         neighbourhoods. *)
      for _ = 1 to 3 * (len + 1) do
        if len > 0 then begin
          let i = Rng.int rng len in
          if Rng.bool rng then Bitset.set t i else Bitset.clear t i
        end
      done;
      let ok_cardinal = Bitset.cardinal t = ref_cardinal t in
      let collected = ref [] in
      Bitset.iter_set t (fun i -> collected := i :: !collected);
      let ok_iter = List.rev !collected = ref_members t in
      let ok_next =
        List.for_all
          (fun i -> Bitset.next_set t i = ref_next_set t i)
          (List.init (len + 2) Fun.id)
      in
      ok_cardinal && ok_iter && ok_next)

let test_bitset_bounds () =
  let t = Bitset.create 131 in
  (* Indices in [len, words*64) land inside the byte buffer but outside
     the set — exactly the ones a missing bounds check would accept. *)
  List.iter
    (fun i ->
      List.iter
        (fun (name, f) ->
          try
            f i;
            Alcotest.failf "Bitset.%s accepted index %d (len 131)" name i
          with Invalid_argument _ -> ())
        [
          ("get", fun i -> ignore (Bitset.get t i));
          ("set", fun i -> Bitset.set t i);
          ("clear", fun i -> Bitset.clear t i);
          ("assign", fun i -> Bitset.assign t i true);
        ])
    [ -1; 131; 135; 191 ];
  (try ignore (Bitset.next_set t (-1)); Alcotest.fail "next_set accepted -1"
   with Invalid_argument _ -> ());
  (* In-range extremes still work, and next_set saturates cleanly. *)
  Bitset.set t 130;
  Alcotest.(check bool) "get 130" true (Bitset.get t 130);
  Alcotest.(check int) "next_set from 131" (-1) (Bitset.next_set t 131);
  Alcotest.(check int) "next_set finds 130" 130 (Bitset.next_set t 99);
  Alcotest.(check int) "cardinal" 1 (Bitset.cardinal t)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_implicit_regular_contract;
      prop_implicit_regular_matches_materialised;
      prop_implicit_chords_contract;
      prop_bitset_word_ops;
    ]

let () =
  Alcotest.run "topology-implicit"
    [
      ( "implicit",
        qcheck_cases
        @ [
            Alcotest.test_case "hypercube CSR neighbour order" `Quick
              test_implicit_hypercube_order;
            Alcotest.test_case "hypercube broadcast bit-identical" `Quick
              test_implicit_hypercube_broadcast_identical;
            Alcotest.test_case "implicit parameter validation" `Quick
              test_implicit_validation;
            Alcotest.test_case "scenario caps and rejections" `Quick
              test_scenario_guards;
            Alcotest.test_case "bitset bounds checks" `Quick test_bitset_bounds;
          ] );
    ]
