(* Differential tests for the shared simulation kernel.

   The kernel's contract is that its optimisations — bitsets, decision
   caches, witness-cached quiescence, the incrementally maintained
   census — are invisible: every driver draws randomness in the
   documented order and produces the same trajectories as a naive
   full-rescan round loop. This file pins that three ways:

   - [Ref_engine] is a deliberately slow bool-array transliteration of
     the round schedule (full rescans every round, no caches, list
     bookkeeping). Random (n, d, protocol, fault-plan, skew)
     configurations must produce identical result records through
     [Engine.run] and the reference.
   - The incremental census (no churn hooks) and the full per-round
     recount (hooks installed) must agree on every field — the census
     invariant documented on [Kernel].
   - A single-message [Multi.run] under communication-only faults is
     the same simulation as [Engine.run], table for table.

   Plus churn-hook smoke tests for the hook surface Multi/Async gained
   from the kernel. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Multi = Rumor_sim.Multi
module Async = Rumor_sim.Async
module Fault = Rumor_sim.Fault
module Selector = Rumor_sim.Selector
module Protocol = Rumor_sim.Protocol
module Topology = Rumor_sim.Topology
module Trace = Rumor_sim.Trace
module Baselines = Rumor_core.Baselines
module Algorithm = Rumor_core.Algorithm
module Params = Rumor_core.Params

(* ------------------------------------------------------------------ *)
(* Reference engine: obviously-correct, allocation-happy round loop.  *)
(* ------------------------------------------------------------------ *)

module Ref_engine = struct
  type result = {
    rounds : int;
    completion_round : int option;
    informed : int;
    population : int;
    push_tx : int;
    pull_tx : int;
    channels : int;
    knows : bool array;
    down : int list;
  }

  let run ?(fault = Fault.none) ?(stop_when_complete = false) ?skew ~rng
      ~(topology : Topology.t) ~(protocol : 'st Protocol.t) ~sources () =
    let cap = topology.Topology.capacity in
    let alive v = topology.Topology.alive v in
    let skew_f = match skew with Some f -> f | None -> fun _ -> 0 in
    let rt = Fault.start fault ~capacity:cap in
    let informed = Array.make cap false in
    let state =
      Array.init cap (fun _ -> protocol.Protocol.init ~informed:false)
    in
    List.iter
      (fun s ->
        informed.(s) <- true;
        state.(s) <- protocol.Protocol.init ~informed:true)
      sources;
    let selector = Selector.make protocol.Protocol.selector ~capacity:cap in
    let scratch =
      Array.make (max (Selector.fanout protocol.Protocol.selector) 1) 0
    in
    let max_skew = ref 0 in
    for v = 0 to cap - 1 do
      if skew_f v > !max_skew then max_skew := skew_f v
    done;
    let horizon = protocol.Protocol.horizon + !max_skew in
    let push_tx = ref 0 and pull_tx = ref 0 and channels = ref 0 in
    let completion = ref None in
    (* Both queues hold ids in reverse arrival order. *)
    let pending = ref [] in
    let dup_order = ref [] in
    let dups = Array.make cap 0 in
    let decide v r =
      let logical = r - skew_f v in
      if logical < 1 then Protocol.silent
      else protocol.Protocol.decide state.(v) ~round:logical
    in
    let quiet_at r v =
      let logical = r + 1 - skew_f v in
      logical >= 1 && protocol.Protocol.quiescent state.(v) ~round:logical
    in
    let round = ref 0 and stop = ref false in
    while (not !stop) && !round < horizon do
      incr round;
      let r = !round in
      Fault.begin_round rt ~rng ~round:r ~degree:topology.Topology.degree
        ~alive
        ~informed:(fun v -> informed.(v));
      for u = 0 to cap - 1 do
        if alive u && Fault.active rt u then begin
          let d = topology.Topology.degree u in
          if d > 0 then begin
            let k =
              Selector.select selector ~rng ~node:u ~degree:d ~out:scratch
            in
            for i = 0 to k - 1 do
              let w = topology.Topology.neighbor u scratch.(i) in
              if alive w && Fault.active rt w && Fault.channel_ok fault rng
              then begin
                incr channels;
                if
                  informed.(u)
                  && (decide u r).Protocol.push
                  && Fault.push_ok rt rng ~sender:u
                then begin
                  incr push_tx;
                  if informed.(w) || List.mem w !pending then begin
                    if dups.(u) = 0 then dup_order := u :: !dup_order;
                    dups.(u) <- dups.(u) + 1
                  end
                  else pending := w :: !pending
                end;
                if
                  informed.(w)
                  && (decide w r).Protocol.pull
                  && Fault.pull_ok rt rng ~sender:w
                then begin
                  incr pull_tx;
                  if informed.(u) || List.mem u !pending then begin
                    if dups.(w) = 0 then dup_order := w :: !dup_order;
                    dups.(w) <- dups.(w) + 1
                  end
                  else pending := u :: !pending
                end
              end
            done
          end
        end
      done;
      List.iter
        (fun v ->
          informed.(v) <- true;
          state.(v) <-
            protocol.Protocol.receive state.(v)
              ~round:(max 0 (r - skew_f v)))
        (List.rev !pending);
      pending := [];
      List.iter
        (fun v ->
          for _ = 1 to dups.(v) do
            state.(v) <-
              protocol.Protocol.feedback state.(v)
                ~round:(max 0 (r - skew_f v))
          done;
          dups.(v) <- 0)
        (List.rev !dup_order);
      dup_order := [];
      let live = ref 0 and know = ref 0 and quiet = ref true in
      for v = 0 to cap - 1 do
        if alive v then
          if Fault.active rt v then begin
            incr live;
            if informed.(v) then begin
              incr know;
              if not (quiet_at r v) then quiet := false
            end
          end
          else if informed.(v) && Fault.may_recover rt then quiet := false
      done;
      if !completion = None && !live > 0 && !know = !live then
        completion := Some r;
      if !quiet then stop := true;
      if stop_when_complete && !completion <> None then stop := true
    done;
    let live = ref 0 and know = ref 0 and down = ref [] in
    for v = cap - 1 downto 0 do
      if alive v then
        if Fault.active rt v then begin
          incr live;
          if informed.(v) then incr know
        end
        else down := v :: !down
    done;
    {
      rounds = !round;
      completion_round = !completion;
      informed = !know;
      population = !live;
      push_tx = !push_tx;
      pull_tx = !pull_tx;
      channels = !channels;
      knows = Array.copy informed;
      down = !down;
    }
end

(* ------------------------------------------------------------------ *)
(* Random configurations.                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  n : int;
  d : int;
  pchoice : int;
  fault : Fault.t;
  skewed : bool;
  stop : bool;
}

let config_of_seed seed =
  let c = Rng.create (0x5EED + seed) in
  let n = 2 * (6 + Rng.int c 20) in
  let d = 3 + Rng.int c 4 in
  let burst =
    if Rng.int c 3 = 0 then Some (Fault.burst ~loss:0.2 ~burst_len:3.)
    else None
  in
  let strike =
    if Rng.int c 3 = 0 then
      let adversary =
        match Rng.int c 3 with
        | 0 -> Fault.Random_nodes
        | 1 -> Fault.Highest_degree
        | _ -> Fault.Frontier
      in
      Some (Fault.strike ~adversary ~at_round:(1 + Rng.int c 4) ~count:d ())
    else None
  in
  let crash = Rng.int c 3 = 0 in
  let fault =
    Fault.plan
      ~call_failure:(0.2 *. Rng.float c)
      ~link_loss:(0.3 *. Rng.float c)
      ~push_loss:(0.15 *. Rng.float c)
      ~pull_loss:(0.15 *. Rng.float c)
      ?burst
      ~crash_rate:(if crash then 0.03 else 0.)
      ~recover_rate:(if crash then 0.3 else 0.)
      ?strike ()
  in
  {
    seed;
    n;
    d;
    pchoice = Rng.int c 4;
    fault;
    skewed = Rng.int c 3 = 0;
    stop = Rng.int c 4 = 0;
  }

let graph_of cfg =
  let rng = Rng.create (0xA11CE + cfg.seed) in
  Regular.sample_connected ~rng ~n:cfg.n ~d:cfg.d Regular.Pairing

(* The protocol state type varies per choice, so the checks run inside
   a polymorphic helper applied at each branch. *)
let with_protocol cfg (check : 'st Protocol.t -> bool) =
  match cfg.pchoice with
  | 0 -> check (Baselines.push ~fanout:1 ~horizon:25 ())
  | 1 -> check (Baselines.pull ~fanout:1 ~horizon:25 ())
  | 2 -> check (Baselines.push_pull ~fanout:1 ~horizon:25 ())
  | _ ->
      check
        (Algorithm.make
           (Params.make ~alpha:1.0 ~fanout:4 ~n_estimate:cfg.n ~d:cfg.d ()))

let same_engine_ref (e : Engine.result) (f : Ref_engine.result) =
  e.Engine.rounds = f.Ref_engine.rounds
  && e.Engine.completion_round = f.Ref_engine.completion_round
  && e.Engine.informed = f.Ref_engine.informed
  && e.Engine.population = f.Ref_engine.population
  && e.Engine.push_tx = f.Ref_engine.push_tx
  && e.Engine.pull_tx = f.Ref_engine.pull_tx
  && e.Engine.channels = f.Ref_engine.channels
  && Rumor_sim.Bitset.to_bool_array e.Engine.knows = f.Ref_engine.knows
  && e.Engine.down = f.Ref_engine.down

let same_engine_engine (a : Engine.result) (b : Engine.result) =
  a.Engine.rounds = b.Engine.rounds
  && a.Engine.completion_round = b.Engine.completion_round
  && a.Engine.informed = b.Engine.informed
  && a.Engine.population = b.Engine.population
  && a.Engine.push_tx = b.Engine.push_tx
  && a.Engine.pull_tx = b.Engine.pull_tx
  && a.Engine.channels = b.Engine.channels
  && a.Engine.knows = b.Engine.knows
  && a.Engine.down = b.Engine.down

(* Engine vs reference vs full-census Engine: one random configuration,
   three simulations from the same seed, all fields equal. *)
let engine_differential =
  QCheck.Test.make ~count:80
    ~name:"Engine.run = naive reference = full-census Engine.run"
    QCheck.small_int
    (fun seed ->
      let cfg = config_of_seed seed in
      let g = graph_of cfg in
      let topology = Topology.of_graph g in
      let skew = if cfg.skewed then Some (fun v -> v mod 3) else None in
      let sources = [ Rng.int (Rng.create (0x50 + seed)) (Graph.n g) ] in
      with_protocol cfg (fun protocol ->
          let run ?on_round_end () =
            Engine.run ?skew ?on_round_end ~fault:cfg.fault
              ~stop_when_complete:cfg.stop
              ~rng:(Rng.create (0xF00D + seed))
              ~topology ~protocol ~sources ()
          in
          let incremental = run () in
          let full = run ~on_round_end:(fun _ -> ()) () in
          let reference =
            Ref_engine.run ?skew ~fault:cfg.fault
              ~stop_when_complete:cfg.stop
              ~rng:(Rng.create (0xF00D + seed))
              ~topology ~protocol ~sources ()
          in
          same_engine_ref incremental reference
          && same_engine_engine incremental full))

(* Packed per-node state vs boxed arrays: for rng-pure protocols the
   compact-cell kernel path must be bit-identical to the boxed one —
   same rounds, same trajectories, same knows bitmap. The protocol pool
   here deliberately spans every packed encoding in the tree: the
   baseline received-round code, bef's phase machine, and the Feedback
   counter variants with their two-counter stride packing. *)
type packed_check = { check : 'st. 'st Protocol.t -> bool }

let packed_protocol cfg { check } =
  match cfg.pchoice with
  | 0 -> check (Baselines.push_pull ~fanout:1 ~horizon:25 ())
  | 1 -> check (Rumor_core.Feedback.feedback_counter ~k:2 ~horizon:25 ())
  | 2 -> check (Rumor_core.Feedback.blind_counter ~k:3 ~horizon:25 ())
  | _ ->
      check
        (Algorithm.make
           (Params.make ~alpha:1.0 ~fanout:4 ~n_estimate:cfg.n ~d:cfg.d ()))

let packed_boxed_differential =
  QCheck.Test.make ~count:80
    ~name:"Engine.run ~packed:true = Engine.run ~packed:false"
    QCheck.small_int
    (fun seed ->
      let cfg = config_of_seed seed in
      let g = graph_of cfg in
      let topology = Topology.of_graph g in
      let skew = if cfg.skewed then Some (fun v -> v mod 3) else None in
      let sources = [ Rng.int (Rng.create (0x50 + seed)) (Graph.n g) ] in
      packed_protocol cfg
        {
          check =
            (fun protocol ->
              let run packed =
                Engine.run ~packed ?skew ~fault:cfg.fault
                  ~stop_when_complete:cfg.stop
                  ~rng:(Rng.create (0xF00D + seed))
                  ~topology ~protocol ~sources ()
              in
              same_engine_engine (run true) (run false));
        })

(* The packed encode/decode pair is a bijection on reachable states:
   round-tripping the codes the packed run actually produces recovers
   the boxed state exactly. *)
let packed_codec_roundtrip =
  QCheck.Test.make ~count:120 ~name:"packed encode/decode round-trips"
    QCheck.small_int
    (fun seed ->
      let cfg = config_of_seed seed in
      packed_protocol cfg
        {
          check =
            (fun protocol ->
              match protocol.Protocol.packed with
              | None -> false (* every pool protocol must carry packed ops *)
              | Some p ->
                  let ops = p.Protocol.ops in
                  let codes =
                    ops.Protocol.p_init ~informed:false
                    :: ops.Protocol.p_init ~informed:true
                    :: List.concat_map
                         (fun round ->
                           let c0 =
                             ops.Protocol.p_receive
                               (ops.Protocol.p_init ~informed:false)
                               ~round
                           in
                           [ c0; ops.Protocol.p_feedback c0 ~round ])
                         [ 1; 2; 7; 25 ]
                  in
                  List.for_all
                    (fun c -> p.Protocol.encode (p.Protocol.decode c) = c)
                    codes);
        })

(* A single rumor through Multi is the same simulation as Engine, as
   long as the plan only uses the communication modes both fault views
   sample identically (link/call/asymmetric loss; no bursts, crashes or
   strikes). *)
let multi_singleton_differential =
  QCheck.Test.make ~count:60
    ~name:"single-message Multi.run = Engine.run (communication faults)"
    QCheck.small_int
    (fun seed ->
      let cfg = config_of_seed seed in
      let fault =
        {
          cfg.fault with
          Fault.burst = None;
          crash_rate = 0.;
          recover_rate = 0.;
          strike = None;
        }
      in
      let g = graph_of cfg in
      let topology = Topology.of_graph g in
      let source = Rng.int (Rng.create (0x50 + seed)) (Graph.n g) in
      with_protocol cfg (fun protocol ->
          let e =
            Engine.run ~fault ~rng:(Rng.create (0xF00D + seed)) ~topology
              ~protocol ~sources:[ source ] ()
          in
          let m =
            Multi.run ~fault ~rng:(Rng.create (0xF00D + seed)) ~topology
              ~protocol
              ~messages:[ { Multi.source; created = 0 } ]
              ()
          in
          let mr = m.Multi.messages.(0) in
          m.Multi.rounds = e.Engine.rounds
          && m.Multi.channels = e.Engine.channels
          && m.Multi.population = e.Engine.population
          && mr.Multi.completion_round = e.Engine.completion_round
          && mr.Multi.informed = e.Engine.informed
          && mr.Multi.transmissions = Engine.transmissions e))

(* Multi's census invariant: installing a no-op churn hook switches to
   the full per-round recount and must change nothing, message by
   message, over staggered creation times. *)
let multi_census_differential =
  QCheck.Test.make ~count:60
    ~name:"Multi.run incremental census = full census"
    QCheck.small_int
    (fun seed ->
      let cfg = config_of_seed seed in
      let g = graph_of cfg in
      let topology = Topology.of_graph g in
      let c = Rng.create (0x5AC + seed) in
      let k = 1 + Rng.int c 3 in
      let messages =
        List.init k (fun j ->
            { Multi.source = Rng.int c (Graph.n g); created = j * Rng.int c 4 })
      in
      with_protocol cfg (fun protocol ->
          let run ?on_round_end () =
            Multi.run ?on_round_end ~fault:cfg.fault ~collect_trace:true
              ~rng:(Rng.create (0xF00D + seed))
              ~topology ~protocol ~messages ()
          in
          let a = run () in
          let b = run ~on_round_end:(fun _ -> ()) () in
          a.Multi.rounds = b.Multi.rounds
          && a.Multi.channels = b.Multi.channels
          && a.Multi.population = b.Multi.population
          && a.Multi.messages = b.Multi.messages
          && Trace.rows (Option.get a.Multi.trace)
             = Trace.rows (Option.get b.Multi.trace)))

(* ------------------------------------------------------------------ *)
(* Churn-hook smoke tests.                                            *)
(* ------------------------------------------------------------------ *)

let protocol () = Baselines.push_pull ~fanout:1 ~horizon:20 ()

let test_multi_hooks () =
  let rng = Rng.create 7 in
  let g = Regular.sample_connected ~rng ~n:64 ~d:4 Regular.Pairing in
  let topology = Topology.of_graph g in
  let fired = ref 0 in
  let r =
    Multi.run ~collect_trace:true
      ~on_round_end:(fun round ->
        incr fired;
        Alcotest.(check int) "hook sees the current round" !fired round)
      ~reset:(fun () -> [ 0 ])
      ~rng ~topology ~protocol:(protocol ())
      ~messages:[ { Multi.source = 1; created = 0 } ]
      ()
  in
  Alcotest.(check int) "hook fired once per round" r.Multi.rounds !fired;
  let t = Option.get r.Multi.trace in
  Alcotest.(check int) "one trace row per round" r.Multi.rounds (Trace.length t);
  (* Node 0 is reset after every round, so the rumor can never cover
     the live population and the final census must exclude it. *)
  Alcotest.(check bool)
    "reset node keeps the rumor incomplete" true
    (r.Multi.messages.(0).Multi.informed < r.Multi.population);
  Alcotest.(check (option int))
    "no completion under perpetual reset" None
    r.Multi.messages.(0).Multi.completion_round

let test_async_hooks () =
  let rng () = Rng.create 11 in
  let g = Regular.sample_connected ~rng:(rng ()) ~n:64 ~d:4 Regular.Pairing in
  let run ?on_round_end ?reset ?(collect_trace = false) () =
    (* Fresh rng with the same seed per run: the unit-boundary machinery
       draws nothing, so hooked and bare runs must coincide. *)
    let r = Rng.create 1213 in
    ignore (Rng.int r 1);
    Async.run ?on_round_end ?reset ~collect_trace ~rng:r ~graph:g
      ~protocol:(protocol ()) ~sources:[ 3 ] ()
  in
  let bare = run () in
  let fired = ref 0 in
  let hooked = run ~on_round_end:(fun _ -> incr fired) ~collect_trace:true () in
  Alcotest.(check int) "activations unchanged by hooks"
    bare.Async.activations hooked.Async.activations;
  Alcotest.(check int) "informed unchanged by hooks" bare.Async.informed
    hooked.Async.informed;
  Alcotest.(check int) "transmissions unchanged by hooks"
    bare.Async.transmissions hooked.Async.transmissions;
  Alcotest.(check (float 0.)) "clock unchanged by hooks" bare.Async.time
    hooked.Async.time;
  (* The result's clock is the overshooting final jump, so boundaries
     it crossed never flush: the hook count is the number of complete
     units the run processed — one per trace row minus the partial row
     that closes the run. *)
  let rows = Trace.rows (Option.get hooked.Async.trace) in
  Alcotest.(check bool) "hook fired at least once" true (!fired >= 1);
  Alcotest.(check bool)
    "hook fired once per completed unit" true
    (!fired = List.length rows || !fired = List.length rows - 1);
  let tx =
    List.fold_left
      (fun acc (row : Trace.row) -> acc + row.Trace.push_tx + row.Trace.pull_tx)
      0 rows
  in
  Alcotest.(check int) "trace rows account for every transmission"
    hooked.Async.transmissions tx;
  let newly =
    List.fold_left
      (fun acc (row : Trace.row) -> acc + row.Trace.newly)
      0 rows
  in
  Alcotest.(check int) "trace rows account for every first receipt"
    (hooked.Async.informed - 1) newly

let test_async_reset () =
  let rng = Rng.create 17 in
  let g = Regular.sample_connected ~rng ~n:32 ~d:4 Regular.Pairing in
  let resets = ref 0 in
  let r =
    Async.run
      ~reset:(fun () ->
        incr resets;
        [ 0 ])
      ~rng ~graph:g ~protocol:(protocol ()) ~sources:[ 1 ] ()
  in
  Alcotest.(check bool) "reset drained at unit boundaries" true (!resets > 0);
  Alcotest.(check bool) "reset count bounded by the clock" true
    (!resets <= int_of_float r.Async.time);
  Alcotest.(check bool) "informed stays within population" true
    (r.Async.informed <= Graph.n g)

let () =
  Alcotest.run "kernel"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            engine_differential;
            packed_boxed_differential;
            packed_codec_roundtrip;
            multi_singleton_differential;
            multi_census_differential;
          ] );
      ( "churn hooks",
        [
          Alcotest.test_case "multi hooks fire and stay consistent" `Quick
            test_multi_hooks;
          Alcotest.test_case "async hooks leave the run unchanged" `Quick
            test_async_hooks;
          Alcotest.test_case "async reset drains at unit boundaries" `Quick
            test_async_reset;
        ] );
    ]
