(* Experiment harness: one section per experiment in DESIGN.md's
   per-experiment index (E1..E12), plus bechamel micro-benchmarks.

   Every experiment prints an ASCII table with the measured shape of a
   claim from the paper (the paper is purely theoretical — it has no
   empirical tables, so the theorem statements define the targets; see
   EXPERIMENTS.md for the paper-vs-measured record).

   With --json FILE the harness additionally writes one machine-readable
   record per experiment (schema "rumor-bench/1": id, title, params,
   per-seed metrics, summaries, wall/CPU seconds, GC deltas, git
   metadata) so performance trajectories can be diffed across PRs —
   see EXPERIMENTS.md for the schema and `rumor bench-check` for the
   validator.

   Usage: main.exe [E1 E2 ... | all] [--quick] [--reps N] [--domains N]
          [--json FILE] *)

module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Graph = Rumor_graph.Graph
module Spectral = Rumor_graph.Spectral
module Regular = Rumor_gen.Regular
module Product = Rumor_gen.Product
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Fault = Rumor_sim.Fault
module Trace = Rumor_sim.Trace
module Selector = Rumor_sim.Selector
module Params = Rumor_core.Params
module Phase = Rumor_core.Phase
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Replica = Rumor_p2p.Replica
module Summary = Rumor_stats.Summary
module Table = Rumor_stats.Table
module Regression = Rumor_stats.Regression
module Experiment = Rumor_stats.Experiment
module Json = Rumor_obs.Json
module Metrics = Rumor_obs.Metrics
module Encode = Rumor_obs.Encode
module Chaos = Rumor_cli.Chaos
module Scenario = Rumor_cli.Scenario
module Matrix = Rumor_cli.Matrix

let quick = ref false
let reps_override : int option ref = ref None
let reps () =
  match !reps_override with Some r -> r | None -> if !quick then 3 else 5

(* 0 = auto (Experiment.default_domains); reps are pre-forked RNG
   streams, so the domain count never changes results, only wall time. *)
let domains_flag = ref 0
let domains () =
  if !domains_flag >= 1 then !domains_flag else Experiment.default_domains ()

(* --- telemetry ---

   When --json FILE is given, experiments append (key, value) pairs to
   [current_data] via [record]; the driver wraps each experiment in a
   Metrics.timed span and assembles one record per experiment. Without
   --json, [record] is a no-op and the harness behaves exactly as
   before. *)

let json_path : string option ref = ref None
let current_points : Json.t list ref = ref []
let current_scalars : (string * Json.t) list ref = ref []
let current_title = ref ""

(* A repeated measurement (one per sweep point) — lands in the record's
   [data.points] array, in emission order. *)
let record_point v =
  if !json_path <> None then current_points := v :: !current_points

(* A one-shot named value (a fit, a derived constant). *)
let record key v =
  if !json_path <> None then current_scalars := (key, v) :: !current_scalars

let section id title =
  current_title := title;
  Printf.printf "\n=== %s: %s ===\n%!" id title

let fin x = float_of_int x
let log2 = Params.log2

(* One protocol run on a fresh G(n,d) instance; returns the engine result. *)
let run_once ?fault ?(stop = false) ~rng ~n ~d protocol =
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  Run.once ?fault ~stop_when_complete:stop ~rng ~graph:g ~protocol
    ~source:(Run.random_source rng g) ()

type sweep_point = {
  tx_per_node : Summary.t;
  rounds : Summary.t;
  success : float;
  per_seed_tx : float list;  (** tx/node, one entry per repetition *)
  per_seed_rounds : float list;  (** completion (or last) round per repetition *)
}

(* Summaries over a list of raw engine results — shared between the
   inline [sweep] loops and the matrix-file wrappers, so a migrated
   experiment rebuilds exactly the numbers its loop used to print. *)
let sweep_point_of ~n results =
  let per_seed_tx =
    List.map (fun r -> fin (Engine.transmissions r) /. fin n) results
  in
  let per_seed_rounds =
    List.map
      (fun r ->
        match r.Engine.completion_round with
        | Some c -> fin c
        | None -> fin r.Engine.rounds)
      results
  in
  {
    tx_per_node = Summary.of_list per_seed_tx;
    rounds = Summary.of_list per_seed_rounds;
    success =
      fin (List.length (List.filter Engine.success results))
      /. fin (List.length results);
    per_seed_tx;
    per_seed_rounds;
  }

let sweep ?fault ?(stop = false) ~seed ~n ~d protocol_of =
  sweep_point_of ~n
    (Experiment.replicate_parallel ~domains:(domains ()) ~seed
       ~reps:(reps ()) (fun rng ->
         run_once ?fault ~stop ~rng ~n ~d (protocol_of ())))

(* --- committed matrix files ---

   The migrated experiments (E1, E7's loss x estimate grid, E8, A12,
   A13) load their sweep grids from scenarios/matrix_*.txt instead of
   hardcoded loops. The wrappers patch the committed file for
   --quick/--reps (Matrix.set_base / Matrix.override_axis keep the
   per-cell seed arithmetic of the full grid) and rebuild the
   historical tables and JSON points from the raw per-cell engine
   results, so the emitted records are bit-identical to the
   pre-migration loops: same offset seeds, same streams, same
   scalars. *)

let scenarios_dir () =
  if Sys.file_exists (Filename.concat "scenarios" "matrix_e1.txt") then
    "scenarios"
  else
    (* `dune exec` may leave us in a sandbox cwd; walk up from the
       executable (_build/default/bench/main.exe). *)
    let cand =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat ".." ".."))
    in
    let cand = Filename.concat cand "scenarios" in
    if Sys.file_exists (Filename.concat cand "matrix_e1.txt") then cand
    else failwith "cannot locate the scenarios/ directory"

let load_matrix file =
  match Matrix.parse_file (Filename.concat (scenarios_dir ()) file) with
  | Ok spec -> spec
  | Error m -> failwith (Printf.sprintf "%s: %s" file m)

let patch_base spec ~key ~value =
  match Matrix.set_base spec ~key ~value with
  | Ok spec -> spec
  | Error m -> failwith m

let patch_axis spec ~key ~values =
  match Matrix.override_axis spec ~key ~values with
  | Ok spec -> spec
  | Error m -> failwith m

let run_matrix spec =
  match Matrix.run ~domains:(domains ()) spec with
  | Ok rr -> rr
  | Error m -> failwith m

(* The raw engine results of the cell whose coordinates contain every
   (key, value) of [subset] — subset matching keeps the wrappers
   independent of zip-key ordering inside [coords]. *)
let results_where rr subset =
  match
    List.find_opt
      (fun (o : Matrix.cell_outcome) ->
        List.for_all
          (fun kv -> List.mem kv o.Matrix.cell.Matrix.coords)
          subset)
      rr.Matrix.outcomes
  with
  | Some o when o.Matrix.results <> [] -> o.Matrix.results
  | _ ->
      failwith
        (Printf.sprintf "matrix cell {%s} missing (truncated run?)"
           (String.concat ", "
              (List.map (fun (k, v) -> k ^ " = " ^ v) subset)))

(* One sweep point as a JSON object: summaries plus the raw per-seed
   metrics, prefixed by caller-supplied parameter fields. *)
let sweep_point_json ?(extra = []) pt =
  Json.Obj
    (extra
    @ [
        ("tx_per_node", Encode.summary pt.tx_per_node);
        ("rounds", Encode.summary pt.rounds);
        ("success_rate", Json.Float pt.success);
        ( "per_seed",
          Json.Obj
            [
              ("tx_per_node", Encode.float_list pt.per_seed_tx);
              ("rounds", Encode.float_list pt.per_seed_rounds);
            ] );
      ])

(* ------------------------------------------------------------------ *)
(* E0: do generated instances satisfy the proofs' assumptions?         *)
(* ------------------------------------------------------------------ *)

let e0 () =
  section "E0" "instance validation: the structural assumptions behind the proofs";
  let n = if !quick then 4096 else 16384 in
  let t =
    Table.create
      ~columns:
        [
          ("d", Table.Right);
          ("connected", Table.Right);
          ("girth", Table.Right);
          ("tree frac r=1", Table.Right);
          ("tree frac r=2", Table.Right);
          ("lambda2", Table.Right);
          ("2 sqrt(d-1)", Table.Right);
          ("diam >=", Table.Right);
        ]
  in
  List.iteri
    (fun i d ->
      let rng = Rng.create (50 + i) in
      (* The erased variant is simple (the pairing variant trivially has
         girth 1 from its self-loops); erasure keeps the structure the
         proofs rely on. *)
      let g = Regular.sample ~rng ~n ~d Regular.Erased in
      let girth =
        match Rumor_graph.Structure.girth ~max_roots:128 ~rng g with
        | Some x -> string_of_int x
        | None -> "-"
      in
      Table.add_row t
        [
          string_of_int d;
          string_of_bool (Rumor_graph.Traversal.is_connected g);
          girth;
          Printf.sprintf "%.3f"
            (Rumor_graph.Structure.tree_fraction g ~rng ~radius:1 ~samples:400);
          Printf.sprintf "%.3f"
            (Rumor_graph.Structure.tree_fraction g ~rng ~radius:2 ~samples:400);
          Printf.sprintf "%.2f" (Spectral.lambda2 g ~rng ~iters:80);
          Printf.sprintf "%.2f" (Spectral.ramanujan_bound d);
          string_of_int
            (Rumor_graph.Traversal.diameter_lower_bound g ~rng ~samples:2);
        ])
    [ 4; 8; 16 ];
  Table.print t;
  print_endline
    "(the proofs need: connectivity, local tree-likeness (Lemma 1) — which\n\
    \ degrades with d at fixed n since a radius-r ball holds ~d^r vertices —\n\
    \ and the Friedman eigenvalue bound behind the Expander-Mixing Lemma)"

(* ------------------------------------------------------------------ *)
(* E1 + E2: transmissions and rounds vs n (Theorems 2 and 3).          *)
(* ------------------------------------------------------------------ *)

let e1_e2 () =
  section "E1/E2" "message and round complexity vs n (Theorems 2/3)";
  let d = 8 in
  let sizes =
    if !quick then [ 1024; 4096; 16384 ]
    else [ 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
  in
  (* The committed grid is the full 3 protocols x 7 sizes; --quick
     shrinks the n axis in place (list positions keep the historical
     100+i / 200+i / 300+i seeds the quick loops used). *)
  let spec = load_matrix "matrix_e1.txt" in
  let spec = patch_base spec ~key:"reps" ~value:(string_of_int (reps ())) in
  let spec =
    if !quick then
      patch_axis spec ~key:"n" ~values:(List.map string_of_int sizes)
    else spec
  in
  let rr = run_matrix spec in
  let cell proto n =
    results_where rr [ ("protocol", proto); ("n", string_of_int n) ]
  in
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("log2 n", Table.Right);
          ("bef tx/node", Table.Right);
          ("push tx/node", Table.Right);
          ("pp-age tx/node", Table.Right);
          ("bef rounds", Table.Right);
          ("push rounds", Table.Right);
          ("bef ok", Table.Right);
        ]
  in
  let bef_pts = ref [] and push_pts = ref [] in
  List.iter
    (fun n ->
      let bef = sweep_point_of ~n (cell "bef" n) in
      let push = sweep_point_of ~n (cell "push" n) in
      let pp_age = sweep_point_of ~n (cell "push-pull-age" n) in
      bef_pts := (fin n, bef.tx_per_node.Summary.mean) :: !bef_pts;
      push_pts := (fin n, push.tx_per_node.Summary.mean) :: !push_pts;
      record_point
        (Json.Obj
           [
             ("n", Json.Int n);
             ("d", Json.Int d);
             ("bef", sweep_point_json bef);
             ("push", sweep_point_json push);
             ("push_pull_age", sweep_point_json pp_age);
           ]);
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.0f" (log2 (fin n));
          Printf.sprintf "%.1f" bef.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" push.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" pp_age.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" bef.rounds.Summary.mean;
          Printf.sprintf "%.1f" push.rounds.Summary.mean;
          Printf.sprintf "%.0f%%" (100. *. bef.success);
        ])
    sizes;
  Table.print t;
  let bef_fit = Regression.semilogx !bef_pts in
  let push_fit = Regression.semilogx !push_pts in
  record "per_doubling_slope"
    (Json.Obj
       [
         ("bef", Json.Float bef_fit.Regression.slope);
         ("push", Json.Float push_fit.Regression.slope);
       ]);
  Printf.printf
    "per-doubling growth of tx/node: bef %.3f vs push %.3f (paper: O(log log n) vs Theta(log n))\n"
    bef_fit.Regression.slope push_fit.Regression.slope;
  let to_log2x = List.map (fun (x, y) -> (log2 x, y)) in
  print_string
    (Rumor_stats.Plot.render ~width:56 ~height:12 ~x_label:"log2 n"
       ~y_label:"tx/node"
       [
         { Rumor_stats.Plot.name = "bef"; marker = '*'; points = to_log2x !bef_pts };
         { Rumor_stats.Plot.name = "push"; marker = 'o'; points = to_log2x !push_pts };
       ])

(* ------------------------------------------------------------------ *)
(* E3: the lower bound shape (Theorem 1).                              *)
(* ------------------------------------------------------------------ *)

(* Minimal pull-tail length needed by a Karp-style strictly oblivious
   schedule (push-only, then pull-only), found by binary search against
   a fixed bag of instances. The lower bound (Theorem 1) forces this
   tail to be Omega(log n / log d) in the standard one-call model. *)
let minimal_tail ~seed ~n ~d ~fanout =
  let push_rounds = Params.ceil_log2 n + 2 in
  let instances =
    Experiment.replicate_parallel ~domains:(domains ()) ~seed ~reps:(reps ()) (fun rng ->
        let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
        (g, Rng.split rng))
  in
  let succeeds tail =
    List.for_all
      (fun (g, rng) ->
        let rng = Rng.copy rng in
        let protocol =
          Baselines.push_then_pull ~fanout ~push_rounds
            ~total_rounds:(push_rounds + tail) ()
        in
        Engine.success
          (Run.once ~rng ~graph:g ~protocol ~source:0 ()))
      instances
  in
  let rec search lo hi =
    (* invariant: lo fails (or is -1), hi succeeds *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      if succeeds mid then search lo mid else search mid hi
    end
  in
  let hi0 = 6 * Params.ceil_log2 n in
  if succeeds 0 then 0
  else if not (succeeds hi0) then hi0
  else search 0 hi0

let e3 () =
  section "E3" "lower bound: standard-model transmissions ~ n log n / log d (Theorem 1)";
  let n = if !quick then 4096 else 16384 in
  let degs = [ 4; 8; 16; 32; 64 ] in
  let t =
    Table.create
      ~columns:
        [
          ("d", Table.Right);
          ("log n/log d", Table.Right);
          ("min tail", Table.Right);
          ("1-call tx/node", Table.Right);
          ("4-call bef tx/node", Table.Right);
        ]
  in
  let pts = ref [] in
  List.iteri
    (fun i d ->
      let tail = minimal_tail ~seed:(400 + i) ~n ~d ~fanout:1 in
      let push_rounds = Params.ceil_log2 n + 2 in
      let tuned =
        sweep ~seed:(500 + i) ~n ~d (fun () ->
            Baselines.push_then_pull ~push_rounds
              ~total_rounds:(push_rounds + tail) ())
      in
      let bef =
        sweep ~seed:(600 + i) ~n ~d (fun () ->
            Algorithm.make (Params.make ~n_estimate:n ~d ()))
      in
      let x = log2 (fin n) /. log2 (fin d) in
      pts := (x, tuned.tx_per_node.Summary.mean) :: !pts;
      Table.add_row t
        [
          string_of_int d;
          Printf.sprintf "%.2f" x;
          string_of_int tail;
          Printf.sprintf "%.1f" tuned.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" bef.tx_per_node.Summary.mean;
        ])
    degs;
  Table.print t;
  let fit = Regression.linear !pts in
  Printf.printf
    "tuned 1-call tx/node vs log n/log d: slope %.2f, r2 %.2f (lower bound predicts a positive linear trend)\n"
    fit.Regression.slope fit.Regression.r2;
  print_string
    (Rumor_stats.Plot.render ~width:56 ~height:10 ~x_label:"log n / log d"
       ~y_label:"tx/node"
       [ { Rumor_stats.Plot.name = "1-call"; marker = '*'; points = !pts } ])

(* ------------------------------------------------------------------ *)
(* E4: phase dynamics of one run (Lemmas 1-3).                         *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4" "phase dynamics of a single run (Lemmas 1-3)";
  let n = if !quick then 16384 else 65536 in
  let d = 8 in
  let rng = Rng.create 4242 in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let params = Params.make ~n_estimate:n ~d () in
  let s = Algorithm.schedule_of params None in
  let res =
    Run.once ~collect_trace:true ~rng ~graph:g ~protocol:(Algorithm.make params)
      ~source:0 ()
  in
  Printf.printf
    "n=%d d=%d variant=%s | phase1 <= %d, phase2 <= %d, phase3 <= %d, end %d\n"
    n d (Phase.variant_to_string s.Phase.variant) s.Phase.p1_end s.Phase.p2_end
    s.Phase.p3_end s.Phase.last;
  (match res.Engine.trace with
  | None -> ()
  | Some tr ->
      let t =
        Table.create
          ~columns:
            [
              ("round", Table.Right);
              ("phase", Table.Left);
              ("informed", Table.Right);
              ("newly", Table.Right);
              ("push tx", Table.Right);
              ("pull tx", Table.Right);
            ]
      in
      List.iter
        (fun r ->
          let phase =
            match Phase.phase_of s ~round:r.Trace.round with
            | Phase.Phase1 -> "1 push-once"
            | Phase.Phase2 -> "2 push-all"
            | Phase.Phase3 -> "3 pull"
            | Phase.Phase4 -> "4 active-push"
            | Phase.Finished -> "-"
          in
          Table.add_row t
            [
              string_of_int r.Trace.round;
              phase;
              string_of_int r.Trace.informed;
              string_of_int r.Trace.newly;
              string_of_int r.Trace.push_tx;
              string_of_int r.Trace.pull_tx;
            ])
        (Trace.rows tr);
      Table.print t);
  Printf.printf "complete=%b total tx/node=%.1f\n" (Engine.success res)
    (fin (Engine.transmissions res) /. fin n)

(* ------------------------------------------------------------------ *)
(* E5: degree sweep across the Algorithm 1 / Algorithm 2 crossover.    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5" "degree sweep: Algorithm 1 vs Algorithm 2 (Theorems 2 vs 3)";
  let n = if !quick then 4096 else 16384 in
  let degs = [ 4; 6; 8; 12; 16; 24; 32 ] in
  let t =
    Table.create
      ~columns:
        [
          ("d", Table.Right);
          ("variant", Table.Left);
          ("tx/node", Table.Right);
          ("rounds", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iteri
    (fun i d ->
      let params = Params.make ~n_estimate:n ~d () in
      let variant = Phase.auto_variant params in
      let st = sweep ~seed:(700 + i) ~n ~d (fun () -> Algorithm.make params) in
      Table.add_row t
        [
          string_of_int d;
          Phase.variant_to_string variant;
          Printf.sprintf "%.1f" st.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" st.rounds.Summary.mean;
          Printf.sprintf "%.0f%%" (100. *. st.success);
        ])
    degs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* E6: communication failures.                                         *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6" "robustness to communication failures (abstract / Section 1)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("link loss", Table.Right);
          ("alpha", Table.Right);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
        ]
  in
  List.iteri
    (fun i loss ->
      List.iter
        (fun alpha ->
          let fault = Fault.make ~link_loss:loss () in
          let results =
            Experiment.replicate_parallel ~domains:(domains ()) ~seed:(800 + i) ~reps:(reps ()) (fun rng ->
                run_once ~fault ~rng ~n ~d
                  (Algorithm.make (Params.make ~alpha ~n_estimate:n ~d ())))
          in
          let cov_per_seed =
            List.map
              (fun r -> fin r.Engine.informed /. fin r.Engine.population)
              results
          in
          let tx_per_seed =
            List.map (fun r -> fin (Engine.transmissions r) /. fin n) results
          in
          let coverage = Summary.of_list cov_per_seed in
          let success =
            fin (List.length (List.filter Engine.success results))
            /. fin (List.length results)
          in
          let tx = Summary.of_list tx_per_seed in
          record_point
            (Json.Obj
               [
                 ("link_loss", Json.Float loss);
                 ("alpha", Json.Float alpha);
                 ("n", Json.Int n);
                 ("d", Json.Int d);
                 ("success_rate", Json.Float success);
                 ("coverage", Encode.summary coverage);
                 ("tx_per_node", Encode.summary tx);
                 ( "per_seed",
                   Json.Obj
                     [
                       ("coverage", Encode.float_list cov_per_seed);
                       ("tx_per_node", Encode.float_list tx_per_seed);
                     ] );
               ]);
          Table.add_row t
            [
              Printf.sprintf "%.2f" loss;
              Printf.sprintf "%.1f" alpha;
              Printf.sprintf "%.0f%%" (100. *. success);
              Printf.sprintf "%.4f" coverage.Summary.mean;
              Printf.sprintf "%.1f" tx.Summary.mean;
            ])
        [ 1.0; 2.0 ])
    [ 0.; 0.05; 0.1; 0.2 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E7: inaccurate estimates of n.                                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7"
    "fault intensity x size-estimate error frontier (Sections 1.2 and 4)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  (* alpha = 2 doubles every phase length, the slack the paper's
     "limited communication failures" analysis budgets for. Bursty loss
     is the harsher model: a Gilbert-Elliott chain with mean burst
     length 4 rounds, so a node in a bad state loses an entire phase of
     transmissions, not an independent coin flip per message. *)
  let alpha = 2.0 in
  let burst_len = 4.0 in
  (* The loss x estimate grid lives in scenarios/matrix_e7.txt (offset
     seeds 900 + 10i + j); --quick only shrinks n. The scenario key
     n_error is the estimate/n factor: ceil(n_error * n) equals the
     historical int_of_float (n * factor) for these exact binary
     factors at power-of-two n. *)
  let spec = load_matrix "matrix_e7.txt" in
  let spec = patch_base spec ~key:"reps" ~value:(string_of_int (reps ())) in
  let spec =
    if !quick then patch_base spec ~key:"n" ~value:(string_of_int n)
    else spec
  in
  let rr = run_matrix spec in
  let t =
    Table.create
      ~columns:
        [
          ("burst loss", Table.Right);
          ("est/n", Table.Right);
          ("success", Table.Right);
          ("tx/node", Table.Right);
          ("rounds", Table.Right);
        ]
  in
  List.iter
    (fun loss_s ->
      List.iter
        (fun factor_s ->
          let loss = float_of_string loss_s
          and factor = float_of_string factor_s in
          let st =
            sweep_point_of ~n
              (results_where rr
                 [ ("burst_loss", loss_s); ("n_error", factor_s) ])
          in
          record_point
            (sweep_point_json
               ~extra:
                 [
                   ("burst_loss", Json.Float loss);
                   ("estimate_factor", Json.Float factor);
                   ("n", Json.Int n);
                   ("d", Json.Int d);
                   ("alpha", Json.Float alpha);
                 ]
               st);
          Table.add_row t
            [
              Printf.sprintf "%.2f" loss;
              Printf.sprintf "%.3f" factor;
              Printf.sprintf "%.0f%%" (100. *. st.success);
              Printf.sprintf "%.1f" st.tx_per_node.Summary.mean;
              Printf.sprintf "%.1f" st.rounds.Summary.mean;
            ])
        [ "0.125"; "0.25"; "1"; "4"; "8" ])
    [ "0"; "0.05"; "0.1"; "0.2" ];
  Table.print t;
  (* Adversarial crash schedules on top of 10% bursty loss. *)
  let t2 =
    Table.create
      ~columns:
        [
          ("crash schedule", Table.Left);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
        ]
  in
  let burst = Fault.burst ~loss:0.1 ~burst_len in
  List.iteri
    (fun i (label, plan) ->
      let fault = { plan with Fault.burst = Some burst } in
      let results =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(950 + i)
          ~reps:(reps ()) (fun rng ->
            run_once ~fault ~rng ~n ~d
              (Algorithm.make (Params.make ~alpha ~n_estimate:n ~d ())))
      in
      let success =
        fin (List.length (List.filter Engine.success results))
        /. fin (List.length results)
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r ->
               if r.Engine.population = 0 then 0.
               else fin r.Engine.informed /. fin r.Engine.population)
             results)
      in
      let tx =
        Summary.of_list
          (List.map (fun r -> fin (Engine.transmissions r) /. fin n) results)
      in
      Table.add_row t2
        [
          label;
          Printf.sprintf "%.0f%%" (100. *. success);
          Printf.sprintf "%.4f" coverage.Summary.mean;
          Printf.sprintf "%.1f" tx.Summary.mean;
        ])
    [
      ("crash-stop 0.2%/round", Fault.plan ~crash_rate:0.002 ());
      ( "crash-recovery 1%/round, recover 20%",
        Fault.plan ~crash_rate:0.01 ~recover_rate:0.2 () );
      ( "strike: random n/8 @ round 3",
        Fault.plan
          ~strike:
            (Fault.strike ~adversary:Fault.Random_nodes ~at_round:3
               ~count:(n / 8) ())
          () );
      ( "strike: highest-degree n/8 @ round 3",
        Fault.plan
          ~strike:
            (Fault.strike ~adversary:Fault.Highest_degree ~at_round:3
               ~count:(n / 8) ())
          () );
    ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* E8: the self-healing frontier (fault x churn, repair on/off).       *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8"
    "self-healing frontier: fault x churn grid, repair epochs on/off";
  let n = if !quick then 2048 else 8192 in
  (* The fault x churn x repair grid lives in scenarios/matrix_e8.txt:
     the three fault storms are one axis (burst_len / crash_rate /
     recover_rate zipped onto burst_loss), churn_rate the second,
     max_epochs (0 = bare, 8 = repair) the third — the repair axis
     carries no seed stride, so both arms of a (fault, churn) cell run
     on identical storms, exactly as the old loops reused one seed. *)
  let spec = load_matrix "matrix_e8.txt" in
  let spec = patch_base spec ~key:"reps" ~value:(string_of_int (reps ())) in
  let spec =
    if !quick then patch_base spec ~key:"n" ~value:(string_of_int n)
    else spec
  in
  let rr = run_matrix spec in
  let faults =
    [
      ("none", "0");
      ("burst 0.2 + crash", "0.2");
      ("burst 0.3 + crash", "0.3");
    ]
  in
  let churn_rates = [ ("0", 0.); ("0.005", 0.005); ("0.02", 0.02) ] in
  let t =
    Table.create
      ~columns:
        [
          ("fault", Table.Left);
          ("churn/round", Table.Right);
          ("cov (bare)", Table.Right);
          ("cov (repair)", Table.Right);
          ("epochs", Table.Right);
          ("repair tx/node", Table.Right);
          ("extinct", Table.Right);
        ]
  in
  List.iter
    (fun (fault_label, loss_s) ->
      List.iter
        (fun (rate_s, rate) ->
          let cell epochs_s =
            results_where rr
              [
                ("burst_loss", loss_s);
                ("churn_rate", rate_s);
                ("max_epochs", epochs_s);
              ]
          in
          let bare = cell "0" in
          let healed = cell "8" in
          (* A crashed-with-amnesia source can kill the rumor before it
             spreads; with no live knower left, no protocol can recover
             it, so extinct seeds are counted apart instead of dragging
             the repair coverage below a reachable target. *)
          let survivors = List.filter (fun r -> r.Engine.informed > 0) healed in
          let extinct = List.length healed - List.length survivors in
          let coverage rs = List.map Engine.coverage rs in
          let cov_bare = Summary.of_list (coverage bare) in
          let cov_healed =
            Summary.of_list
              (if survivors = [] then [ 0. ] else coverage survivors)
          in
          let epochs =
            Summary.of_list
              (match survivors with
              | [] -> [ 0. ]
              | rs -> List.map (fun r -> fin (Engine.epochs_used r)) rs)
          in
          let repair_tx =
            Summary.of_list
              (match survivors with
              | [] -> [ 0. ]
              | rs -> List.map (fun r -> fin (Engine.repair_tx r) /. fin n) rs)
          in
          record_point
            (Json.Obj
               [
                 ("fault", Json.String fault_label);
                 ("churn_rate", Json.Float rate);
                 ("coverage_bare", Encode.summary cov_bare);
                 ("coverage_repair", Encode.summary cov_healed);
                 ("epochs_used", Encode.summary epochs);
                 ("repair_tx_per_node", Encode.summary repair_tx);
                 ("extinct_seeds", Json.Int extinct);
                 ( "per_seed",
                   Json.Obj
                     [
                       ("coverage_bare", Encode.float_list (coverage bare));
                       ("coverage_repair", Encode.float_list (coverage healed));
                       ( "epochs_used",
                         Encode.float_list
                           (List.map (fun r -> fin (Engine.epochs_used r)) healed)
                       );
                     ] );
               ]);
          Table.add_row t
            [
              fault_label;
              Printf.sprintf "%.3f n" rate;
              Printf.sprintf "%.4f" cov_bare.Summary.mean;
              Printf.sprintf "%.4f" cov_healed.Summary.mean;
              Printf.sprintf "%.1f" epochs.Summary.mean;
              Printf.sprintf "%.2f" repair_tx.Summary.mean;
              string_of_int extinct;
            ])
        churn_rates)
    faults;
  Table.print t;
  print_endline
    "(bare = engine stops when informed nodes go quiescent; repair = bounded\n\
    \ pull-timeout/backoff epochs afterwards, averaged over seeds where the\n\
    \ rumor survived. The repair column should sit at 1.0000 with a few\n\
    \ epochs and O(1) extra transmissions per node; extinct counts seeds\n\
    \ where crash amnesia killed every copy before it spread — unrecoverable\n\
    \ by any protocol.)"

(* ------------------------------------------------------------------ *)
(* E9: replicated database maintenance.                                *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9" "replicated database: rumor mongering vs anti-entropy ([7])";
  let n = if !quick then 1024 else 4096 in
  let d = 8 in
  let updates = 64 in
  let rng = Rng.create 1100 in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  (* Strategy A: every update is broadcast with the paper's algorithm. *)
  let o = Overlay.of_graph ~capacity:n g in
  let r = Replica.create ~capacity:n in
  let protocol () = Algorithm.make (Params.make ~n_estimate:n ~d ()) in
  let bcast_tx = ref 0 and bcast_rounds = ref 0 in
  for u = 1 to updates do
    let origin = Overlay.random_node o rng in
    let key = Dist.zipf rng ~n:256 ~s:1. in
    let res =
      Replica.broadcast ~rng ~overlay:o ~protocol:(protocol ()) r ~origin ~key
        ~data:u
    in
    bcast_tx := !bcast_tx + Engine.transmissions res;
    bcast_rounds := !bcast_rounds + res.Engine.rounds
  done;
  let converged_a = Replica.converged r ~overlay:o in
  (* Strategy B: updates are written locally, anti-entropy spreads them. *)
  let r2 = Replica.create ~capacity:n in
  let rng2 = Rng.create 1101 in
  for u = 1 to updates do
    let origin = Overlay.random_node o rng2 in
    let key = Dist.zipf rng2 ~n:256 ~s:1. in
    ignore (Replica.local_write r2 ~node:origin ~key ~data:u)
  done;
  let ae_transfers = ref 0 and ae_compared = ref 0 and ae_rounds = ref 0 in
  while (not (Replica.converged r2 ~overlay:o)) && !ae_rounds < 200 do
    let c = Replica.anti_entropy_round ~rng:rng2 ~overlay:o r2 in
    ae_transfers := !ae_transfers + c.Replica.transfers;
    ae_compared := !ae_compared + c.Replica.compared;
    incr ae_rounds
  done;
  let t =
    Table.create
      ~columns:
        [
          ("strategy", Table.Left);
          ("converged", Table.Right);
          ("rounds", Table.Right);
          ("sent/node/update", Table.Right);
          ("work/node/update", Table.Right);
        ]
  in
  Table.add_row t
    [
      "broadcast each update (bef)";
      string_of_bool converged_a;
      Printf.sprintf "%.1f" (fin !bcast_rounds /. fin updates);
      Printf.sprintf "%.1f" (fin !bcast_tx /. fin n /. fin updates);
      Printf.sprintf "%.1f" (fin !bcast_tx /. fin n /. fin updates);
    ];
  Table.add_row t
    [
      "anti-entropy only";
      string_of_bool (Replica.converged r2 ~overlay:o);
      string_of_int !ae_rounds;
      Printf.sprintf "%.1f" (fin !ae_transfers /. fin n /. fin updates);
      Printf.sprintf "%.1f" (fin !ae_compared /. fin n /. fin updates);
    ];
  Table.print t;
  print_endline
    "(work counts store entries examined during reconciliation; [7] replaces\n\
    \ constant anti-entropy with rumor mongering precisely because the digest\n\
    \ work grows with the database, not with the update)"

(* ------------------------------------------------------------------ *)
(* E10: the K5-product counterexample (Conclusions).                   *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "Cartesian product with K5 vs G(n,d) (Conclusions)";
  (* Warm start: half the nodes already know the rumor; pull-only rounds
     finish the job. The number of rounds (and hence transmissions) this
     tail needs is where multiple choices pay off — the conclusion
     predicts the payoff shrinks on the product graph, whose columns of
     clique-mates make 4 of every node's 8 neighbours redundant. *)
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let graph_regular rng = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let graph_product rng =
    let base = Regular.sample_connected ~rng ~n:(n / 5) ~d:(d - 4) Regular.Pairing in
    Product.with_clique base ~k:5
  in
  let pull_tail ~seed graph_of fanout =
    (* Mean rounds for pull-only to finish from a uniform half-informed
       start, plus the mean transmissions spent. *)
    let results =
      Experiment.replicate_parallel ~domains:(domains ()) ~seed ~reps:(reps ()) (fun rng ->
          let g = graph_of rng in
          let sources =
            Array.to_list (Rng.distinct rng ~bound:(Graph.n g) ~k:(Graph.n g / 2))
          in
          Engine.run ~stop_when_complete:true ~rng
            ~topology:(Topology.of_graph g)
            ~protocol:(Baselines.pull ~fanout ~horizon:400 ())
            ~sources ())
    in
    let rounds =
      Summary.of_list
        (List.map
           (fun r ->
             match r.Engine.completion_round with
             | Some c -> fin c
             | None -> fin r.Engine.rounds)
           results)
    in
    let tx =
      Summary.of_list
        (List.map (fun r -> fin (Engine.transmissions r) /. fin n) results)
    in
    (rounds.Summary.mean, tx.Summary.mean)
  in
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("rounds f=1", Table.Right);
          ("rounds f=4", Table.Right);
          ("speedup", Table.Right);
          ("tx/node f=1", Table.Right);
          ("tx/node f=4", Table.Right);
          ("msg saving", Table.Right);
        ]
  in
  List.iteri
    (fun i (name, graph_of) ->
      let r1, x1 = pull_tail ~seed:(1200 + i) graph_of 1 in
      let r4, x4 = pull_tail ~seed:(1300 + i) graph_of 4 in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.1f" r1;
          Printf.sprintf "%.1f" r4;
          Printf.sprintf "%.2fx" (r1 /. r4);
          Printf.sprintf "%.1f" x1;
          Printf.sprintf "%.1f" x4;
          Printf.sprintf "%.2fx" (x1 /. x4);
        ])
    [ ("G(n,8)", graph_regular); ("G(n/5,4) x K5", graph_product) ];
  Table.print t;
  print_endline
    "(the paper predicts a clear improvement on G(n,d) and a weaker one on the product)";
  (* Mechanism check: the proof of Theorem 2 needs nodes with >= 4
     uninformed neighbours to be rare, so that one pull round over four
     distinct channels clears (deterministically) everyone else. Whole
     uninformed K5-columns break that argument: every member has exactly
     4 uninformed neighbours and survives the pull with probability
     C(4,4)/C(8,4) = 1/70 instead of ~0. Measure survivors of a single
     4-distinct pull round from a 10% uninformed start. *)
  let survivors ~seed make_graph_and_uninformed =
    Experiment.mean_of ~seed ~reps:(reps ()) (fun rng ->
        let g, uninformed = make_graph_and_uninformed rng in
        let mark = Array.make (Graph.n g) true in
        List.iter (fun v -> mark.(v) <- false) uninformed;
        let sources =
          List.filter (fun v -> mark.(v))
            (List.init (Graph.n g) (fun i -> i))
        in
        let res =
          Engine.run ~rng
            ~topology:(Topology.of_graph g)
            ~protocol:(Baselines.pull ~fanout:4 ~horizon:1 ())
            ~sources ()
        in
        fin (res.Engine.population - res.Engine.informed)
        /. fin (List.length uninformed))
  in
  let regular_random rng =
    let g = graph_regular rng in
    let h = Graph.n g / 10 in
    (g, Array.to_list (Rng.distinct rng ~bound:(Graph.n g) ~k:h))
  in
  let product_columns rng =
    let g = graph_product rng in
    let base = Graph.n g / 5 in
    let cols = Array.to_list (Rng.distinct rng ~bound:base ~k:(base / 10)) in
    (g, List.concat_map (fun c -> List.init 5 (fun l -> (c * 5) + l)) cols)
  in
  let s_reg = survivors ~seed:1250 regular_random in
  let s_prod = survivors ~seed:1251 product_columns in
  Printf.printf
    "one 4-distinct pull round, 10%% uninformed: survivors %.5f (G(n,8), random set) vs %.5f (product, whole columns; 1/70 = %.5f predicted)\n"
    s_reg s_prod (1. /. 70.)

(* ------------------------------------------------------------------ *)
(* E11: how many choices are needed? (Conclusions)                     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "fanout sweep: are 3 choices enough? (Conclusions)";
  let n = if !quick then 4096 else 16384 in
  let d = 12 in
  let t =
    Table.create
      ~columns:
        [
          ("fanout", Table.Right);
          ("success", Table.Right);
          ("tx/node", Table.Right);
          ("rounds", Table.Right);
        ]
  in
  List.iteri
    (fun i fanout ->
      let st =
        sweep ~seed:(1400 + i) ~n ~d (fun () ->
            Algorithm.make (Params.make ~fanout ~n_estimate:n ~d ()))
      in
      Table.add_row t
        [
          string_of_int fanout;
          Printf.sprintf "%.0f%%" (100. *. st.success);
          Printf.sprintf "%.1f" st.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" st.rounds.Summary.mean;
        ])
    [ 1; 2; 3; 4; 8 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E12: related-work sanity checks.                                    *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "push constant C_d (Fountoulakis-Panagiotou) and the memory variant [13]";
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("d", Table.Right);
          ("push rounds", Table.Right);
          ("C_d ln n", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  let sizes = if !quick then [ 4096 ] else [ 4096; 16384; 65536 ] in
  List.iteri
    (fun i n ->
      List.iteri
        (fun j d ->
          let st =
            sweep ~stop:true ~seed:(1500 + (10 * i) + j) ~n ~d (fun () ->
                Baselines.push ~horizon:(30 * Params.ceil_log2 n) ())
          in
          let dd = fin d in
          let c_d =
            (1. /. log (2. *. (1. -. (1. /. dd))))
            -. (1. /. (dd *. log (1. -. (1. /. dd))))
          in
          let predicted = c_d *. log (fin n) in
          Table.add_row t
            [
              string_of_int n;
              string_of_int d;
              Printf.sprintf "%.1f" st.rounds.Summary.mean;
              Printf.sprintf "%.1f" predicted;
              Printf.sprintf "%.2f" (st.rounds.Summary.mean /. predicted);
            ])
        [ 4; 8; 16 ])
    sizes;
  Table.print t;
  (* Memory variant vs the 4-choice model: same message budget class. *)
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let bef =
    sweep ~seed:1600 ~n ~d (fun () ->
        Algorithm.make (Params.make ~n_estimate:n ~d ()))
  in
  let memory =
    sweep ~seed:1601 ~n ~d (fun () ->
        Algorithm.sequentialised (Params.make ~n_estimate:n ~d ()))
  in
  Printf.printf
    "memory variant [13] (1 call avoiding last 3): tx/node %.1f success %.0f%% | 4-choice: tx/node %.1f success %.0f%%\n"
    memory.tx_per_node.Summary.mean (100. *. memory.success)
    bef.tx_per_node.Summary.mean (100. *. bef.success)

(* ------------------------------------------------------------------ *)
(* Ablations and extensions.                                           *)
(* ------------------------------------------------------------------ *)

(* A1: the phase-length constant alpha — reliability vs message cost. *)
let a1 () =
  section "A1" "ablation: phase-length constant alpha";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("alpha", Table.Right);
          ("success", Table.Right);
          ("tx/node", Table.Right);
          ("rounds", Table.Right);
        ]
  in
  List.iteri
    (fun i alpha ->
      let st =
        sweep ~seed:(1800 + i) ~n ~d (fun () ->
            Algorithm.make (Params.make ~alpha ~n_estimate:n ~d ()))
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.0f%%" (100. *. st.success);
          Printf.sprintf "%.1f" st.tx_per_node.Summary.mean;
          Printf.sprintf "%.1f" st.rounds.Summary.mean;
        ])
    [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 ];
  Table.print t

(* A2: clock skew — the paper assumes synchronised clocks. *)
let a2 () =
  section "A2" "ablation: clock skew (global-clock assumption)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("max skew", Table.Right);
          ("success", Table.Right);
          ("coverage", Table.Right);
        ]
  in
  List.iteri
    (fun i max_skew ->
      let results =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(1900 + i) ~reps:(reps ()) (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            let offsets =
              Array.init n (fun _ ->
                  if max_skew = 0 then 0 else Rng.int rng (max_skew + 1))
            in
            let params = Params.make ~alpha:2.0 ~n_estimate:n ~d () in
            Engine.run
              ~skew:(fun v -> offsets.(v))
              ~rng
              ~topology:(Topology.of_graph g)
              ~protocol:(Algorithm.make params) ~sources:[ 0 ] ())
      in
      let success =
        fin (List.length (List.filter Engine.success results))
        /. fin (List.length results)
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r -> fin r.Engine.informed /. fin r.Engine.population)
             results)
      in
      Table.add_row t
        [
          string_of_int max_skew;
          Printf.sprintf "%.0f%%" (100. *. success);
          Printf.sprintf "%.4f" coverage.Summary.mean;
        ])
    [ 0; 1; 2; 4; 8 ];
  Table.print t

(* A3: channel amortisation over many simultaneous rumors. *)
let a3 () =
  section "A3" "extension: channel amortisation over k rumors (Section 1 premise)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("rumors", Table.Right);
          ("channels/rumor/node", Table.Right);
          ("tx/rumor/node", Table.Right);
          ("all complete", Table.Right);
        ]
  in
  List.iteri
    (fun i k ->
      let rng = Rng.create (2000 + i) in
      let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
      let params = Params.make ~n_estimate:n ~d () in
      let messages =
        List.init k (fun j ->
            { Rumor_sim.Multi.source = Rng.int rng n; created = 2 * j })
      in
      let r =
        Rumor_sim.Multi.run ~rng
          ~topology:(Topology.of_graph g)
          ~protocol:(Algorithm.make params) ~messages ()
      in
      Table.add_row t
        [
          string_of_int k;
          Printf.sprintf "%.1f" (fin r.Rumor_sim.Multi.channels /. fin k /. fin n);
          Printf.sprintf "%.1f"
            (fin (Rumor_sim.Multi.total_transmissions r) /. fin k /. fin n);
          string_of_bool (Rumor_sim.Multi.all_complete r);
        ])
    [ 1; 4; 16; 64 ];
  Table.print t;
  print_endline
    "(channels are opened blindly every round; with many concurrent rumors the\n\
    \ per-rumor channel overhead vanishes while per-rumor transmissions stay flat)"

(* A4: the adaptive median-counter termination of [25] vs the paper's
   oblivious schedule. *)
let a4 () =
  section "A4" "extension: median-counter termination [25] vs age-based schedule";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("tx/node", Table.Right);
          ("completion", Table.Right);
          ("self-terminating", Table.Left);
        ]
  in
  let bef =
    sweep ~seed:2100 ~n ~d (fun () ->
        Algorithm.make (Params.make ~n_estimate:n ~d ()))
  in
  Table.add_row t
    [
      "bef (age-based, oblivious)";
      Printf.sprintf "%.1f" bef.tx_per_node.Summary.mean;
      Printf.sprintf "%.1f" bef.rounds.Summary.mean;
      "no (needs n estimate)";
    ];
  let mc =
    Experiment.replicate_parallel ~domains:(domains ()) ~seed:2101 ~reps:(reps ()) (fun rng ->
        let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
        let config = Rumor_core.Median_counter.default_config ~n ~fanout:1 in
        Rumor_core.Median_counter.run ~rng ~graph:g ~config ~source:0)
  in
  let mc_tx =
    Summary.of_list
      (List.map
         (fun r -> fin r.Rumor_core.Median_counter.transmissions /. fin n)
         mc)
  in
  let mc_done =
    Summary.of_list
      (List.map
         (fun r ->
           match r.Rumor_core.Median_counter.completion_round with
           | Some c -> fin c
           | None -> fin r.Rumor_core.Median_counter.rounds)
         mc)
  in
  Table.add_row t
    [
      "median-counter [25] (adaptive)";
      Printf.sprintf "%.1f" mc_tx.Summary.mean;
      Printf.sprintf "%.1f" mc_done.Summary.mean;
      "yes (counters only)";
    ];
  Table.print t

(* A5: the algorithm across topologies. *)
let a5 () =
  section "A5" "extension: topology zoo (where does the schedule generalise?)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let topologies =
    [
      ( "G(n,8)",
        fun rng -> Regular.sample_connected ~rng ~n ~d Regular.Pairing );
      ( "hypercube",
        fun _rng -> Rumor_gen.Classic.hypercube (Params.ceil_log2 n) );
      ( "small-world b=0.1",
        fun rng -> Rumor_gen.Smallworld.sample ~rng ~n ~k:4 ~beta:0.1 );
      ( "small-world b=0.9",
        fun rng -> Rumor_gen.Smallworld.sample ~rng ~n ~k:4 ~beta:0.9 );
      ( "pref-attach m=4",
        fun rng -> Rumor_gen.Preferential.sample ~rng ~n ~m:4 );
    ]
  in
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
          ("completion", Table.Right);
        ]
  in
  List.iteri
    (fun i (name, graph_of) ->
      let results =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2200 + i) ~reps:(reps ()) (fun rng ->
            let g = graph_of rng in
            let params =
              Params.make ~alpha:2.0 ~n_estimate:(Graph.n g) ~d ()
            in
            Run.once ~rng ~graph:g ~protocol:(Algorithm.make params)
              ~source:(Run.random_source rng g) ())
      in
      let success =
        fin (List.length (List.filter Engine.success results))
        /. fin (List.length results)
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r -> fin r.Engine.informed /. fin r.Engine.population)
             results)
      in
      let tx =
        Summary.of_list
          (List.map
             (fun r -> fin (Engine.transmissions r) /. fin r.Engine.population)
             results)
      in
      let comp =
        Summary.of_list
          (List.map
             (fun r ->
               match r.Engine.completion_round with
               | Some c -> fin c
               | None -> fin r.Engine.rounds)
             results)
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f%%" (100. *. success);
          Printf.sprintf "%.4f" coverage.Summary.mean;
          Printf.sprintf "%.1f" tx.Summary.mean;
          Printf.sprintf "%.1f" comp.Summary.mean;
        ])
    topologies;
  Table.print t

(* A6: the deployment pipeline — bootstrap the overlay, estimate n,
   then broadcast with the estimated size. *)
let a6 () =
  section "A6" "extension: bootstrap + size estimation + broadcast, end to end";
  let n = if !quick then 2048 else 8192 in
  let d = 8 in
  let rng = Rng.create 2300 in
  let overlay = Rumor_p2p.Bootstrap.grow ~rng ~n ~d ~capacity:n () in
  let q = Rumor_p2p.Bootstrap.quality ~rng ~d overlay in
  Printf.printf
    "grown overlay: regular=%b connected=%b lambda2=%.2f (benchmark %.2f)\n"
    q.Rumor_p2p.Bootstrap.regular q.Rumor_p2p.Bootstrap.connected
    q.Rumor_p2p.Bootstrap.lambda2 q.Rumor_p2p.Bootstrap.ramanujan;
  let est = Rumor_p2p.Estimator.create ~rng ~overlay ~k:256 in
  let rounds = Rumor_p2p.Estimator.run ~rng est in
  let source = Rumor_p2p.Overlay.random_node overlay rng in
  let n_hat = Rumor_p2p.Estimator.estimate est ~node:source in
  Printf.printf
    "size estimation: %d gossip rounds, source's estimate %.0f (true %d, worst factor %.2f)\n"
    rounds n_hat n (Rumor_p2p.Estimator.worst_error est);
  let params =
    Params.make ~alpha:2.0 ~n_estimate:(max 4 (int_of_float n_hat)) ~d ()
  in
  let res =
    Engine.run ~rng
      ~topology:(Rumor_p2p.Overlay.to_topology overlay)
      ~protocol:(Algorithm.make params) ~sources:[ source ] ()
  in
  Printf.printf
    "broadcast with the estimated size: informed %d/%d in %d rounds, %.1f tx/node\n"
    res.Engine.informed res.Engine.population res.Engine.rounds
    (fin (Engine.transmissions res) /. fin n)

(* A7: transient partitions during a broadcast. *)
let a7 () =
  section "A7" "extension: transient network partitions";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("partition window", Table.Left);
          ("minority", Table.Right);
          ("coverage", Table.Right);
          ("success", Table.Right);
        ]
  in
  List.iteri
    (fun i (label, heal_round, fraction) ->
      let results =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2400 + i) ~reps:(reps ()) (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            let o = Rumor_p2p.Overlay.of_graph ~capacity:n g in
            let part =
              if fraction > 0. then
                Some (Rumor_p2p.Partition.split_random o ~rng ~fraction)
              else None
            in
            let params = Params.make ~alpha:2.0 ~n_estimate:n ~d () in
            Engine.run ~rng
              ~on_round_end:(fun r ->
                if r = heal_round then
                  match part with
                  | Some p -> Rumor_p2p.Partition.heal o p
                  | None -> ())
              ~topology:(Rumor_p2p.Overlay.to_topology o)
              ~protocol:(Algorithm.make params) ~sources:[ 0 ] ())
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r -> fin r.Engine.informed /. fin r.Engine.population)
             results)
      in
      let success =
        fin (List.length (List.filter Engine.success results))
        /. fin (List.length results)
      in
      Table.add_row t
        [
          label;
          Printf.sprintf "%.0f%%" (100. *. fraction);
          Printf.sprintf "%.4f" coverage.Summary.mean;
          Printf.sprintf "%.0f%%" (100. *. success);
        ])
    [
      ("none", 0, 0.);
      ("rounds 1-5, 10% cut off", 5, 0.1);
      ("rounds 1-10, 10% cut off", 10, 0.1);
      ("rounds 1-10, 30% cut off", 10, 0.3);
      ("never healed, 10% cut off", max_int, 0.1);
    ];
  Table.print t;
  print_endline
    "(a partition healed before the pull phase costs nothing; the schedule's\n\
    \ slack covers the minority side. An unhealed partition leaves it dark —\n\
    \ no oblivious algorithm can beat connectivity.)"

(* A8: random regular vs G(n,p) at the same average degree (related
   work [11], [13] analyses the dense Gnp regime). *)
let a8 () =
  section "A8" "extension: G(n,d) vs G(n,p) at equal average degree";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("model", Table.Left);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
        ]
  in
  let cases =
    [
      ( "G(n,8) regular",
        fun rng -> Regular.sample_connected ~rng ~n ~d Regular.Pairing );
      ( "G(n,p), p=8/(n-1)",
        fun rng ->
          Rumor_gen.Gnp.sample ~rng ~n ~p:(fin d /. fin (n - 1)) );
      ( "G(n,p), p=16/(n-1)",
        fun rng ->
          Rumor_gen.Gnp.sample ~rng ~n ~p:(2. *. fin d /. fin (n - 1)) );
    ]
  in
  List.iteri
    (fun i (name, graph_of) ->
      let results =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2500 + i) ~reps:(reps ()) (fun rng ->
            let g = graph_of rng in
            let params = Params.make ~alpha:2.0 ~n_estimate:n ~d () in
            Run.once ~rng ~graph:g ~protocol:(Algorithm.make params)
              ~source:(Run.random_source rng g) ())
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r -> fin r.Engine.informed /. fin r.Engine.population)
             results)
      in
      let success =
        fin (List.length (List.filter Engine.success results))
        /. fin (List.length results)
      in
      let tx =
        Summary.of_list
          (List.map (fun r -> fin (Engine.transmissions r) /. fin n) results)
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f%%" (100. *. success);
          Printf.sprintf "%.4f" coverage.Summary.mean;
          Printf.sprintf "%.1f" tx.Summary.mean;
        ])
    cases;
  Table.print t;
  print_endline
    "(sparse G(n,p) has isolated vertices (p below the connectivity threshold\n\
    \ log n / n factor), so full coverage is impossible there by design —\n\
    \ coverage counts the reachable fraction the protocol actually informs)"

(* A9: the rumor-mongering design space of Demers et al. [7]:
   residue vs traffic for coin/counter, blind/feedback. *)
let a9 () =
  section "A9" "extension: Demers rumor-mongering variants (residue vs traffic)";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let horizon = 30 * Params.ceil_log2 n in
  let t =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("k", Table.Right);
          ("residue", Table.Right);
          ("tx/node", Table.Right);
          ("died by", Table.Right);
        ]
  in
  let measure name proto_of =
    List.iter
      (fun k ->
        let results =
          Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2600 + k) ~reps:(reps ()) (fun rng ->
              run_once ~rng ~n ~d (proto_of ~rng ~k))
        in
        let residue =
          Summary.of_list
            (List.map
               (fun r ->
                 fin (r.Engine.population - r.Engine.informed)
                 /. fin r.Engine.population)
               results)
        in
        let tx =
          Summary.of_list
            (List.map (fun r -> fin (Engine.transmissions r) /. fin n) results)
        in
        let died =
          Summary.of_list (List.map (fun r -> fin r.Engine.rounds) results)
        in
        Table.add_row t
          [
            name;
            string_of_int k;
            Printf.sprintf "%.5f" residue.Summary.mean;
            Printf.sprintf "%.1f" tx.Summary.mean;
            Printf.sprintf "%.0f" died.Summary.mean;
          ])
      [ 1; 2; 4 ]
  in
  measure "blind coin" (fun ~rng ~k ->
      Rumor_core.Feedback.blind_coin ~rng ~k ~horizon ());
  measure "blind counter" (fun ~rng:_ ~k ->
      Rumor_core.Feedback.blind_counter ~k ~horizon ());
  measure "feedback coin" (fun ~rng ~k ->
      Rumor_core.Feedback.feedback_coin ~rng ~k ~horizon ());
  measure "feedback counter" (fun ~rng:_ ~k ->
      Rumor_core.Feedback.feedback_counter ~k ~horizon ());
  Table.print t;
  print_endline
    "([7] reports counter < coin and feedback < blind in residue at similar\n\
    \ traffic; all variants are adaptive and need no estimate of n)"

(* A10: does anything change without lockstep rounds? Asynchronous
   (Poisson-clock) execution vs the synchronous model. *)
let a10 () =
  section "A10" "extension: synchronous rounds vs Poisson clocks";
  let n = if !quick then 4096 else 16384 in
  let d = 8 in
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("mode", Table.Left);
          ("completion", Table.Right);
          ("tx/node", Table.Right);
          ("coverage", Table.Right);
        ]
  in
  let add_row name mode completion tx coverage =
    Table.add_row t
      [
        name;
        mode;
        Printf.sprintf "%.1f" completion;
        Printf.sprintf "%.1f" tx;
        Printf.sprintf "%.4f" coverage;
      ]
  in
  let protocols =
    [
      ( "push",
        fun () -> Baselines.push ~horizon:(20 * Params.ceil_log2 n) () );
      ("bef (alpha=3)", fun () ->
        Algorithm.make (Params.make ~alpha:3.0 ~n_estimate:n ~d ()));
    ]
  in
  List.iteri
    (fun i (name, proto_of) ->
      let sync =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2700 + i)
          ~reps:(reps ()) (fun rng ->
            run_once ~stop:(i = 0) ~rng ~n ~d (proto_of ()))
      in
      let sync_completion =
        Summary.of_list
          (List.map
             (fun r ->
               match r.Engine.completion_round with
               | Some c -> fin c
               | None -> fin r.Engine.rounds)
             sync)
      in
      let sync_tx =
        Summary.of_list
          (List.map (fun r -> fin (Engine.transmissions r) /. fin n) sync)
      in
      let sync_cov =
        Summary.of_list
          (List.map (fun r -> fin r.Engine.informed /. fin n) sync)
      in
      add_row name "sync rounds" sync_completion.Summary.mean
        sync_tx.Summary.mean sync_cov.Summary.mean;
      let async =
        Experiment.replicate_parallel ~domains:(domains ()) ~seed:(2800 + i)
          ~reps:(reps ()) (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            Rumor_sim.Async.run ~stop_when_complete:(i = 0) ~rng ~graph:g
              ~protocol:(proto_of ()) ~sources:[ 0 ] ())
      in
      let async_completion =
        Summary.of_list
          (List.map
             (fun r ->
               match r.Rumor_sim.Async.completion_time with
               | Some tt -> tt
               | None -> r.Rumor_sim.Async.time)
             async)
      in
      let async_tx =
        Summary.of_list
          (List.map
             (fun r -> fin r.Rumor_sim.Async.transmissions /. fin n)
             async)
      in
      let async_cov =
        Summary.of_list
          (List.map (fun r -> fin r.Rumor_sim.Async.informed /. fin n) async)
      in
      add_row name "poisson clocks" async_completion.Summary.mean
        async_tx.Summary.mean async_cov.Summary.mean)
    protocols;
  Table.print t;
  print_endline
    "(completion is rounds vs continuous time units — one unit = one expected\n\
    \ activation per node; the schedule survives desynchronisation with a\n\
    \ widened constant, losing only the lockstep phase boundaries)"

(* A11: chaos soak — randomised fault/churn/repair configurations with
   the kernel invariant monitor on every round boundary. The
   bench-grade twin of `rumor chaos`: zero violations expected; the
   telemetry records how much of the config space one seed covers, so
   a regression that breaks an invariant shows up as failures > 0 in
   the record (and fails the CI smoke independently). *)
let a11 () =
  section "A11" "extension: chaos soak over random fault configurations";
  let configs = if !quick then 12 else 48 in
  let rng = Rng.create 4242 in
  let axes (s : Scenario.t) =
    let open Scenario in
    let on = ref [] in
    let flag name b = if b then on := name :: !on in
    flag "loss" (s.loss > 0. || s.call_failure > 0.);
    flag "burst" (s.burst_loss > 0.);
    flag "crash" (s.crash_rate > 0.);
    flag "strike" (s.crash_adversary <> "none");
    flag "partition" (s.partition_round > 0);
    flag "churn" (s.join_prob > 0. || s.leave_prob > 0.);
    flag "repair" (s.max_epochs > 0);
    flag "estimate" (s.n_error <> 1.);
    match List.rev !on with [] -> "clean" | l -> String.concat "+" l
  in
  let t =
    Table.create
      ~columns:
        [
          ("config", Table.Right);
          ("n", Table.Right);
          ("protocol", Table.Left);
          ("axes", Table.Left);
          ("rounds", Table.Right);
          ("coverage", Table.Right);
          ("status", Table.Left);
        ]
  in
  let failures = ref 0 and checked = ref 0 and faulty = ref 0 in
  for i = 1 to configs do
    let s = Chaos.sample rng in
    let o = Chaos.run_one s in
    checked := !checked + o.Chaos.checked;
    let ax = axes s in
    if ax <> "clean" then incr faulty;
    let status =
      if Chaos.failed o then begin
        incr failures;
        "FAIL"
      end
      else "ok"
    in
    Table.add_row t
      [
        string_of_int i;
        string_of_int s.Scenario.n;
        s.Scenario.protocol;
        ax;
        string_of_int o.Chaos.rounds;
        Printf.sprintf "%.3f" o.Chaos.coverage;
        status;
      ];
    record_point
      (Json.Obj
         [
           ("n", Json.Int s.Scenario.n);
           ("protocol", Json.String s.Scenario.protocol);
           ("axes", Json.String ax);
           ("digest", Json.String o.Chaos.digest);
           ("rounds", Json.Int o.Chaos.rounds);
           ("coverage", Json.Float o.Chaos.coverage);
           ("violations", Json.Int o.Chaos.violation_count);
         ])
  done;
  Table.print t;
  Printf.printf
    "(%d configs: %d with at least one fault axis on, %d round boundaries\n\
    \ checked by the invariant monitor, %d violation(s))\n"
    configs !faulty !checked !failures;
  record "configs" (Json.Int configs);
  record "faulty_configs" (Json.Int !faulty);
  record "rounds_checked" (Json.Int !checked);
  record "failures" (Json.Int !failures)

(* A12: implicit topologies at scale — one broadcast at n = 10^7 over a
   seed-derived random-regular view. The materialised pipeline tops out
   near n = 2^20 (Scenario.materialise_cap: stub arrays, shuffle, CSR);
   the implicit view keeps O(d) words of topology state, leaving only
   the kernel's O(n) per-node arrays. The CI quick cell (n = 10^6)
   gates wall seconds and minor words on this record, so a regression
   that starts allocating per neighbour query — invisible at the 2^14
   scale of the other experiments — fails the build here. *)
let a12 () =
  section "A12" "extension: implicit seed-derived topology at n = 10^7";
  let n = if !quick then 1_000_000 else 10_000_000 in
  let d = 8 in
  (* One gate-carrying scale cell from scenarios/matrix_a12.txt (the
     per-node allocation and wall-clock budgets live there as expect
     lines, checked by `rumor matrix` in CI). The scenario kernel draws
     the view seed from the replication stream, so this record is a new
     trajectory, not a bit-identical continuation of the fixed-seed
     pre-migration cell. *)
  let spec = load_matrix "matrix_a12.txt" in
  let spec =
    if !quick then patch_base spec ~key:"n" ~value:(string_of_int n)
    else spec
  in
  let rr = run_matrix spec in
  let o = List.hd rr.Matrix.outcomes in
  let res = List.hd o.Matrix.results in
  let metric k = List.assoc k o.Matrix.metrics in
  let wall_s = metric "wall_s" in
  let tx_per_node = fin (Engine.transmissions res) /. fin n in
  let words_per_node = metric "minor_words_per_node" in
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rounds", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
          ("wall s", Table.Right);
          ("minor w/node", Table.Right);
        ]
  in
  Table.add_row t
    [
      string_of_int n;
      string_of_int res.Engine.rounds;
      Printf.sprintf "%.4f" (Engine.coverage res);
      Printf.sprintf "%.2f" tx_per_node;
      Printf.sprintf "%.2f" wall_s;
      Printf.sprintf "%.2f" words_per_node;
    ];
  Table.print t;
  Printf.printf
    "(implicit-regular d=%d push-pull: the graph is never built — \
     neighbour queries are Feistel evaluations.\n\
    \ minor words are the per-node protocol states; A13 runs bef itself \
     at this scale on the packed per-node\n\
    \ state, see EXPERIMENTS.md)\n"
    d;
  record "n" (Json.Int n);
  record "d" (Json.Int d);
  record "rounds" (Json.Int res.Engine.rounds);
  record "completion_round"
    (match res.Engine.completion_round with
    | Some c -> Json.Int c
    | None -> Json.Null);
  record "coverage" (Json.Float (Engine.coverage res));
  record "tx_per_node" (Json.Float tx_per_node);
  record "run_wall_s" (Json.Float wall_s);
  record "run_minor_words" (Json.Float (words_per_node *. fin n));
  record "minor_words_per_node" (Json.Float words_per_node);
  record "gates_failed" (Json.Int (Matrix.gates_failed rr))

(* A13: the paper's algorithm at the packed-state frontier — one [bef]
   broadcast over an implicit random-regular view, per-node protocol
   state held in byte cells rather than boxed arrays. A12 pins the
   implicit-topology plumbing with push-pull; this cell pins what that
   plumbing was for: Algorithms 1/2 themselves at n = 10^7 (10^6 in
   --quick; n = 10^8 via RUMOR_BENCH_A13_N=100000000, ~10^1 minutes and
   ~1 GB RSS). The jq gates in CI hold wall seconds, coverage == 1.0,
   minor words per node <= 1 and peak heap bytes per node on this
   record, so a regression that reboxes the state — invisible at small
   n — fails the build. *)
let a13 () =
  section "A13" "extension: packed-state bef at n = 10^7";
  let n =
    match Sys.getenv_opt "RUMOR_BENCH_A13_N" with
    | Some v -> (
        match int_of_string_opt v with
        | Some x when x >= 4 && x land 1 = 0 -> x
        | _ -> failwith "RUMOR_BENCH_A13_N must be an even integer >= 4")
    | None -> if !quick then 1_000_000 else 10_000_000
  in
  let d = 8 in
  (* The cell itself (bef over implicit-regular, packed per-node
     state) comes from scenarios/matrix_a13.txt, allocation gates
     included; only n is patched here for --quick / the env
     override. *)
  let spec = load_matrix "matrix_a13.txt" in
  let spec =
    if n <> 10_000_000 then patch_base spec ~key:"n" ~value:(string_of_int n)
    else spec
  in
  (* VmHWM before the run: binary + implicit view, no per-node state
     yet. The post-run peak minus this is (an upper bound on) the
     run's own footprint — the kernel tables plus GC slack. *)
  let rss0_kb = Metrics.peak_rss_kb () in
  let rr = run_matrix spec in
  let o = List.hd rr.Matrix.outcomes in
  let res = List.hd o.Matrix.results in
  let metric k = List.assoc k o.Matrix.metrics in
  let wall_s = metric "wall_s" in
  let protocol_name = Scenario.protocol_name o.Matrix.cell.Matrix.scenario in
  let tx_per_node = fin (Engine.transmissions res) /. fin n in
  let words_per_node = metric "minor_words_per_node" in
  let heap_bytes_per_node = metric "heap_bytes_per_node" in
  let peak_rss_kb = Metrics.peak_rss_kb () in
  let rss_bytes_per_node = fin ((peak_rss_kb - rss0_kb) * 1024) /. fin n in
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rounds", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
          ("wall s", Table.Right);
          ("minor w/node", Table.Right);
          ("heap B/node", Table.Right);
          ("rss B/node", Table.Right);
        ]
  in
  Table.add_row t
    [
      string_of_int n;
      string_of_int res.Engine.rounds;
      Printf.sprintf "%.4f" (Engine.coverage res);
      Printf.sprintf "%.2f" tx_per_node;
      Printf.sprintf "%.2f" wall_s;
      Printf.sprintf "%.2f" words_per_node;
      Printf.sprintf "%.2f" heap_bytes_per_node;
      Printf.sprintf "%.2f" rss_bytes_per_node;
    ];
  Table.print t;
  Printf.printf
    "(bef %s, packed per-node state: 8-bit phase codes + 8-bit decision \
     stamps + 16-bit duplicate\n\
    \ tallies + word-parallel bitsets — the boxed equivalent is ~9 words \
     = 72 bytes per node)\n"
    protocol_name;
  record "n" (Json.Int n);
  record "d" (Json.Int d);
  record "protocol" (Json.String protocol_name);
  record "rounds" (Json.Int res.Engine.rounds);
  record "completion_round"
    (match res.Engine.completion_round with
    | Some c -> Json.Int c
    | None -> Json.Null);
  record "coverage" (Json.Float (Engine.coverage res));
  record "tx_per_node" (Json.Float tx_per_node);
  record "run_wall_s" (Json.Float wall_s);
  record "run_minor_words" (Json.Float (words_per_node *. fin n));
  record "minor_words_per_node" (Json.Float words_per_node);
  record "heap_bytes_per_node" (Json.Float heap_bytes_per_node);
  record "peak_rss_kb" (Json.Int peak_rss_kb);
  record "baseline_rss_kb" (Json.Int rss0_kb);
  record "rss_bytes_per_node" (Json.Float rss_bytes_per_node);
  record "gates_failed" (Json.Int (Matrix.gates_failed rr))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "MICRO" "bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let rng = Rng.create 1700 in
  let n = 16384 and d = 8 in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let scratch = Array.make 4 0 in
  let tests =
    [
      Test.make ~name:"regular-gen-n16k-d8"
        (Staged.stage (fun () ->
             ignore (Regular.sample ~rng ~n ~d Regular.Pairing)));
      Test.make ~name:"distinct-4-of-8"
        (Staged.stage (fun () ->
             ignore (Rng.distinct_into rng ~bound:8 ~k:4 scratch)));
      Test.make ~name:"broadcast-bef-n16k"
        (Staged.stage (fun () ->
             ignore
               (Run.once ~rng ~graph:g
                  ~protocol:(Algorithm.make (Params.make ~n_estimate:n ~d ()))
                  ~source:0 ())));
      Test.make ~name:"lambda2-n16k-30iters"
        (Staged.stage (fun () -> ignore (Spectral.lambda2 g ~rng ~iters:30)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("E0", e0);
    ("E1", e1_e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("A1", a1);
    ("A2", a2);
    ("A3", a3);
    ("A4", a4);
    ("A5", a5);
    ("A6", a6);
    ("A7", a7);
    ("A8", a8);
    ("A9", a9);
    ("A10", a10);
    ("A11", a11);
    ("A12", a12);
    ("A13", a13);
    ("MICRO", micro);
  ]

(* Best-effort git metadata so a bench record can be tied back to the
   commit that produced it. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Json.String line
    | _ -> Json.Null
  with _ -> Json.Null

let () =
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse_args acc rest
    | [ "--json" ] ->
        prerr_endline "main.exe: --json requires a FILE argument";
        exit 2
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse_args acc rest
    | [ "--reps" ] ->
        prerr_endline "main.exe: --reps requires a positive integer";
        exit 2
    | "--reps" :: v :: rest -> (
        match int_of_string_opt v with
        | Some r when r >= 1 ->
            reps_override := Some r;
            parse_args acc rest
        | _ ->
            prerr_endline "main.exe: --reps requires a positive integer";
            exit 2)
    | [ "--domains" ] ->
        prerr_endline "main.exe: --domains requires a positive integer";
        exit 2
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            domains_flag := d;
            parse_args acc rest
        | _ ->
            prerr_endline "main.exe: --domains requires a positive integer";
            exit 2)
    | a :: rest -> parse_args (a :: acc) rest
  in
  let args = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with
    | [] | [ "all" ] -> all_experiments
    | names ->
        List.filter
          (fun (id, _) ->
            List.exists
              (fun a -> String.uppercase_ascii a = id || (a = "E2" && id = "E1"))
              names)
          all_experiments
  in
  Printf.printf "rumor experiment harness (%s mode, %d repetitions, %d domains)\n"
    (if !quick then "quick" else "full")
    (reps ()) (domains ());
  (* The whole run is interruptible: SIGINT/SIGTERM finish the
     repetition in flight, skip the remaining experiments, and the
     partial document below is flushed with [truncated: true] so a
     half-record is never mistaken for a full one. *)
  let records =
    Experiment.with_interrupt_signals (fun () ->
        List.filter_map
          (fun (id, f) ->
            if Experiment.interrupted () then begin
              Printf.printf "  %s skipped (interrupted)\n%!" id;
              None
            end
            else begin
              current_points := [];
              current_scalars := [];
              current_title := "";
              let (), span = Metrics.timed f in
              let span_fields =
                match Metrics.span_to_json span with
                | Json.Obj fs -> fs
                | _ -> []
              in
              let data =
                (match !current_points with
                | [] -> []
                | pts -> [ ("points", Json.List (List.rev pts)) ])
                @ List.rev !current_scalars
              in
              Some
                (Json.Obj
                   (("id", Json.String id)
                    :: ("title", Json.String !current_title)
                    :: span_fields
                   @ [ ("data", Json.Obj data) ]))
            end)
          selected)
  in
  match !json_path with
  | None -> ()
  | Some path ->
      let top =
        Json.Obj
          [
            ("schema", Json.String "rumor-bench/1");
            ("created_unix", Json.Float (Unix.gettimeofday ()));
            ("git", git_describe ());
            ("ocaml", Json.String Sys.ocaml_version);
            ("word_size", Json.Int Sys.word_size);
            ( "argv",
              Json.List
                (List.map (fun a -> Json.String a) (Array.to_list Sys.argv)) );
            ("quick", Json.Bool !quick);
            ("reps", Json.Int (reps ()));
            ("domains", Json.Int (domains ()));
            ("truncated", Json.Bool (Experiment.interrupted ()));
            ("experiments", Json.List records);
          ]
      in
      let oc = open_out path in
      Json.to_channel ~minify:false oc top;
      close_out oc;
      Printf.printf "\nwrote %s (%d experiment records%s)\n" path
        (List.length records)
        (if Experiment.interrupted () then ", truncated" else "")
