(* A peer-to-peer scenario: an overlay maintained as a random regular
   graph by degree-preserving joins, leaves and edge switches, with
   rumors broadcast while peers come and go — the setting that motivates
   the paper (Section 1).

   Run with: dune exec examples/p2p_churn.exe *)

module Rng = Rumor_rng.Rng
module Traversal = Rumor_graph.Traversal
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Switcher = Rumor_p2p.Switcher
module Summary = Rumor_stats.Summary

let () =
  let rng = Rng.create 7 in
  let n = 8192 and d = 8 in

  (* Bootstrap the overlay from one sampled G(n,d) instance; give it
     room to grow. *)
  let seed_graph = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let overlay = Overlay.of_graph ~capacity:(4 * n) seed_graph in
  Printf.printf "bootstrapped overlay: %d peers, degree %d\n"
    (Overlay.node_count overlay) d;

  (* Simulate 10 epochs. In each epoch: peers churn, the edge-switch
     chain re-randomises the topology, and one rumor is broadcast. *)
  let coverages = ref [] in
  for epoch = 1 to 10 do
    (* A burst of churn: ~2% of the population joins, ~2% leaves. *)
    for _ = 1 to Overlay.node_count overlay / 50 do
      ignore (Churn.session overlay ~rng ~d ~join_prob:1.0 ~leave_prob:1.0 ())
    done;
    (* Re-randomise with the local switch Markov chain [16,29]. *)
    Switcher.scramble overlay ~rng ~passes:2;

    (* Broadcast a fresh rumor from a random live peer, with churn
       continuing underneath the broadcast. *)
    let source = Overlay.random_node overlay rng in
    let protocol =
      Algorithm.make
        (Params.make ~alpha:2.0 ~n_estimate:(Overlay.node_count overlay) ~d ())
    in
    let res =
      Engine.run ~rng
        ~on_round_end:(fun _ ->
          ignore (Churn.session overlay ~rng ~d ~join_prob:0.3 ~leave_prob:0.3 ()))
        ~topology:(Overlay.to_topology overlay)
        ~protocol ~sources:[ source ] ()
    in
    let coverage =
      float_of_int res.Engine.informed /. float_of_int res.Engine.population
    in
    coverages := coverage :: !coverages;
    Printf.printf
      "epoch %2d: %5d peers, rumor reached %5d (coverage %.4f) in %d rounds, %.1f tx/node\n"
      epoch res.Engine.population res.Engine.informed coverage res.Engine.rounds
      (float_of_int (Engine.transmissions res) /. float_of_int res.Engine.population)
  done;

  let s = Summary.of_list !coverages in
  Printf.printf "\ncoverage over 10 epochs: mean %.4f, min %.4f\n" s.Summary.mean
    s.Summary.min;
  let snapshot = Overlay.snapshot overlay in
  Printf.printf "final overlay: %d peers, connected %b, invariant %b\n"
    (Overlay.node_count overlay)
    (Traversal.largest_component snapshot >= Overlay.node_count overlay)
    (Overlay.invariant overlay)
